//! Errors of the numeric factorization engines.

use rlchol_gpu::GpuError;
use std::fmt;

/// Failure modes of a numeric factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A diagonal pivot was not strictly positive (matrix not SPD).
    NotPositiveDefinite { column: usize },
    /// A matrix handed to `factor_with`/`refactor` does not share the
    /// sparsity pattern the [`SymbolicCholesky`](crate::SymbolicCholesky)
    /// handle was analyzed for.
    PatternMismatch {
        /// First column whose pattern differs (for a dimension mismatch,
        /// the smaller dimension).
        column: usize,
        /// Lower-triangle nonzeros the analyzed pattern has.
        expected_nnz: usize,
        /// Lower-triangle nonzeros the offending matrix has.
        found_nnz: usize,
    },
    /// The device could not satisfy the engine's memory demand — the
    /// paper's Table I failure mode for nlpkkt120 under RL.
    GpuOutOfMemory {
        requested_bytes: u64,
        capacity_bytes: u64,
    },
    /// Any other device-side failure.
    Gpu(String),
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            FactorError::PatternMismatch {
                column,
                expected_nnz,
                found_nnz,
            } => write!(
                f,
                "sparsity pattern differs from the analyzed pattern at column {column} \
                 (expected {expected_nnz} lower-triangle nonzeros, found {found_nnz})"
            ),
            FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            } => write!(
                f,
                "GPU out of memory: need {requested_bytes} B, capacity {capacity_bytes} B"
            ),
            FactorError::Gpu(msg) => write!(f, "GPU failure: {msg}"),
        }
    }
}

impl std::error::Error for FactorError {}

impl From<GpuError> for FactorError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::OutOfMemory {
                requested_bytes,
                capacity_bytes,
                ..
            } => FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            },
            GpuError::Numerical(msg) => {
                // Device POTRF failures carry the pivot message.
                FactorError::Gpu(msg)
            }
            other => FactorError::Gpu(other.to_string()),
        }
    }
}
