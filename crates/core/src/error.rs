//! Errors of the numeric factorization engines.

use rlchol_gpu::GpuError;
use std::fmt;

/// Failure modes of a numeric factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A diagonal pivot was not strictly positive (matrix not SPD).
    NotPositiveDefinite { column: usize },
    /// A matrix handed to `factor_with`/`refactor` does not share the
    /// sparsity pattern the [`SymbolicCholesky`](crate::SymbolicCholesky)
    /// handle was analyzed for.
    PatternMismatch {
        /// First column whose pattern differs (for a dimension mismatch,
        /// the smaller dimension).
        column: usize,
        /// Lower-triangle nonzeros the analyzed pattern has.
        expected_nnz: usize,
        /// Lower-triangle nonzeros the offending matrix has.
        found_nnz: usize,
    },
    /// The device could not satisfy the engine's memory demand — the
    /// paper's Table I failure mode for nlpkkt120 under RL.
    GpuOutOfMemory {
        requested_bytes: u64,
        capacity_bytes: u64,
    },
    /// Any other device-side failure.
    Gpu(String),
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            FactorError::PatternMismatch {
                column,
                expected_nnz,
                found_nnz,
            } => write!(
                f,
                "sparsity pattern differs from the analyzed pattern at column {column} \
                 (expected {expected_nnz} lower-triangle nonzeros, found {found_nnz})"
            ),
            FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            } => write!(
                f,
                "GPU out of memory: need {requested_bytes} B, capacity {capacity_bytes} B"
            ),
            FactorError::Gpu(msg) => write!(f, "GPU failure: {msg}"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Dimension errors of the staged solve entry points
/// (`solve_into`/`solve_many`/`solve_refined`): a right-hand-side or
/// solution buffer whose length does not match the analyzed system.
/// Typed (rather than an assert) because serving loops feed solves with
/// caller-supplied buffers and should reject a bad request, not abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The right-hand-side block's length is not `n × k`.
    RhsDimension {
        /// Expected length (`n` for single-RHS entry points, `n × k`
        /// for blocked ones).
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// The solution block's length is not `n × k`.
    SolutionDimension {
        /// Expected length.
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// The matrix handed to `solve_refined` for residual computation
    /// has a different dimension than the analyzed system.
    MatrixDimension {
        /// The analyzed system's dimension.
        expected: usize,
        /// Dimension of the matrix actually supplied.
        found: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::RhsDimension { expected, found } => write!(
                f,
                "right-hand side has {found} entries, system expects {expected}"
            ),
            SolveError::SolutionDimension { expected, found } => write!(
                f,
                "solution buffer has {found} entries, system expects {expected}"
            ),
            SolveError::MatrixDimension { expected, found } => write!(
                f,
                "matrix has dimension {found}, analyzed system has {expected}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<GpuError> for FactorError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::OutOfMemory {
                requested_bytes,
                capacity_bytes,
                ..
            } => FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            },
            GpuError::Numerical(msg) => {
                // Device POTRF failures carry the pivot message.
                FactorError::Gpu(msg)
            }
            other => FactorError::Gpu(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant of both error types, with distinctive payloads.
    /// Keeping the lists here (rather than sampling one variant) makes
    /// adding a variant without a Display arm a compile error and
    /// without a payload check a test failure.
    fn factor_variants() -> Vec<(FactorError, &'static [&'static str])> {
        vec![
            (
                FactorError::NotPositiveDefinite { column: 17 },
                &["positive definite", "17"],
            ),
            (
                FactorError::PatternMismatch {
                    column: 3,
                    expected_nnz: 41,
                    found_nnz: 39,
                },
                &["pattern", "column 3", "41", "39"],
            ),
            (
                FactorError::GpuOutOfMemory {
                    requested_bytes: 1_000_000,
                    capacity_bytes: 65_536,
                },
                &["out of memory", "1000000", "65536"],
            ),
            (
                FactorError::Gpu("stream 2 failed".to_string()),
                &["GPU", "stream 2 failed"],
            ),
        ]
    }

    fn solve_variants() -> Vec<(SolveError, &'static [&'static str])> {
        vec![
            (
                SolveError::RhsDimension {
                    expected: 100,
                    found: 99,
                },
                &["right-hand side", "100", "99"],
            ),
            (
                SolveError::SolutionDimension {
                    expected: 100,
                    found: 0,
                },
                &["solution", "100", "0"],
            ),
            (
                SolveError::MatrixDimension {
                    expected: 100,
                    found: 7,
                },
                &["matrix", "100", "7"],
            ),
        ]
    }

    /// Every variant's Display output carries its payload — the context
    /// a `batch_factor` caller (or anyone boxing the error) relies on.
    #[test]
    fn every_variant_formats_with_full_context() {
        for (err, needles) in factor_variants() {
            let msg = format!("{err}");
            for needle in needles {
                assert!(msg.contains(needle), "{err:?}: `{msg}` lacks `{needle}`");
            }
            // Context survives type erasure (Box<dyn Error>, the shape
            // errors take when bubbled out of a serving loop).
            let boxed: Box<dyn std::error::Error> = Box::new(err.clone());
            assert_eq!(boxed.to_string(), msg);
        }
        for (err, needles) in solve_variants() {
            let msg = format!("{err}");
            for needle in needles {
                assert!(msg.contains(needle), "{err:?}: `{msg}` lacks `{needle}`");
            }
            let boxed: Box<dyn std::error::Error> = Box::new(err);
            assert_eq!(boxed.to_string(), msg);
        }
    }

    #[test]
    fn gpu_errors_convert_without_losing_detail() {
        let oom: FactorError = GpuError::OutOfMemory {
            requested_bytes: 9,
            capacity_bytes: 5,
            used_bytes: 4,
        }
        .into();
        assert_eq!(
            oom,
            FactorError::GpuOutOfMemory {
                requested_bytes: 9,
                capacity_bytes: 5
            }
        );
        let numerical: FactorError = GpuError::Numerical("pivot 12 not positive".into()).into();
        assert!(format!("{numerical}").contains("pivot 12 not positive"));
    }
}
