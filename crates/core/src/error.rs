//! Errors of the numeric factorization engines.

use rlchol_gpu::{DeviceError, GpuError};
use std::fmt;
use std::time::Duration;

/// Failure modes of a numeric factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A diagonal pivot was not strictly positive (matrix not SPD).
    NotPositiveDefinite { column: usize },
    /// A matrix handed to `factor_with`/`refactor` does not share the
    /// sparsity pattern the [`SymbolicCholesky`](crate::SymbolicCholesky)
    /// handle was analyzed for.
    PatternMismatch {
        /// First column whose pattern differs (for a dimension mismatch,
        /// the smaller dimension).
        column: usize,
        /// Lower-triangle nonzeros the analyzed pattern has.
        expected_nnz: usize,
        /// Lower-triangle nonzeros the offending matrix has.
        found_nnz: usize,
    },
    /// The device could not satisfy the engine's memory demand — the
    /// paper's Table I failure mode for nlpkkt120 under RL.
    GpuOutOfMemory {
        requested_bytes: u64,
        capacity_bytes: u64,
    },
    /// Any other device-side failure.
    Gpu(String),
    /// An injected device fault struck the factorization (the
    /// fault-injection harness; see [`rlchol_gpu::FaultPlan`]).
    DeviceFault(DeviceError),
    /// The factorization ran past its [`Deadline`](crate::resilience::Deadline)
    /// — real wall time and/or simulated device seconds, whichever
    /// budget expired.
    DeadlineExceeded {
        /// The expired wall-clock budget, if that is what tripped.
        wall: Option<Duration>,
        /// The expired simulated-seconds budget, if that is what tripped.
        sim_seconds: Option<f64>,
    },
    /// The factorization was cancelled via its
    /// [`CancelToken`](crate::resilience::CancelToken).
    Cancelled,
    /// Every workspace lane stayed busy past the checkout wait budget —
    /// the admission-control signal: shed the request instead of
    /// queueing it forever.
    LanesExhausted {
        /// The handle's lane cap.
        cap: usize,
        /// How long the checkout waited before giving up.
        waited: Duration,
    },
}

impl FactorError {
    /// True for device-side failures a different engine could avoid —
    /// the class the [`FallbackChain`](crate::resilience::FallbackChain)
    /// reacts to. Data errors (not-SPD, pattern mismatch) and
    /// control-flow errors (deadline, cancellation, lane exhaustion) are
    /// terminal: every engine would agree on them.
    pub fn is_device(&self) -> bool {
        matches!(
            self,
            FactorError::DeviceFault(_) | FactorError::Gpu(_) | FactorError::GpuOutOfMemory { .. }
        )
    }

    /// True when the failure was marked transient by the fault plan — a
    /// retry on the same engine may succeed
    /// ([`RetryPolicy`](crate::resilience::RetryPolicy)).
    pub fn is_transient(&self) -> bool {
        matches!(self, FactorError::DeviceFault(d) if d.transient)
    }
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            FactorError::PatternMismatch {
                column,
                expected_nnz,
                found_nnz,
            } => write!(
                f,
                "sparsity pattern differs from the analyzed pattern at column {column} \
                 (expected {expected_nnz} lower-triangle nonzeros, found {found_nnz})"
            ),
            FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            } => write!(
                f,
                "GPU out of memory: need {requested_bytes} B, capacity {capacity_bytes} B"
            ),
            FactorError::Gpu(msg) => write!(f, "GPU failure: {msg}"),
            FactorError::DeviceFault(e) => write!(f, "device fault: {e}"),
            FactorError::DeadlineExceeded { wall, sim_seconds } => {
                write!(f, "factorization deadline exceeded:")?;
                if let Some(w) = wall {
                    write!(f, " wall budget {} ms", w.as_millis())?;
                }
                if let Some(s) = sim_seconds {
                    write!(f, " simulated budget {s} s")?;
                }
                Ok(())
            }
            FactorError::Cancelled => write!(f, "factorization cancelled"),
            FactorError::LanesExhausted { cap, waited } => write!(
                f,
                "all {cap} workspace lanes busy after waiting {} ms",
                waited.as_millis()
            ),
        }
    }
}

impl std::error::Error for FactorError {}

/// Dimension errors of the staged solve entry points
/// (`solve_into`/`solve_many`/`solve_refined`): a right-hand-side or
/// solution buffer whose length does not match the analyzed system.
/// Typed (rather than an assert) because serving loops feed solves with
/// caller-supplied buffers and should reject a bad request, not abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The right-hand-side block's length is not `n × k`.
    RhsDimension {
        /// Expected length (`n` for single-RHS entry points, `n × k`
        /// for blocked ones).
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// The solution block's length is not `n × k`.
    SolutionDimension {
        /// Expected length.
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// The matrix handed to `solve_refined` for residual computation
    /// has a different dimension than the analyzed system.
    MatrixDimension {
        /// The analyzed system's dimension.
        expected: usize,
        /// Dimension of the matrix actually supplied.
        found: usize,
    },
    /// `solve_refined` computed a NaN/Inf residual — the inputs (or the
    /// factor) contain non-finite values, and further refinement
    /// iterations cannot converge.
    NonFinite {
        /// The refinement iteration that produced the non-finite
        /// residual (0 is the initial solve's residual).
        iteration: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::RhsDimension { expected, found } => write!(
                f,
                "right-hand side has {found} entries, system expects {expected}"
            ),
            SolveError::SolutionDimension { expected, found } => write!(
                f,
                "solution buffer has {found} entries, system expects {expected}"
            ),
            SolveError::MatrixDimension { expected, found } => write!(
                f,
                "matrix has dimension {found}, analyzed system has {expected}"
            ),
            SolveError::NonFinite { iteration } => {
                write!(f, "non-finite residual at refinement iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<GpuError> for FactorError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::OutOfMemory {
                requested_bytes,
                capacity_bytes,
                ..
            } => FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            },
            GpuError::Numerical(msg) => {
                // Device POTRF failures carry the pivot message.
                FactorError::Gpu(msg)
            }
            GpuError::Fault(e) => FactorError::DeviceFault(e),
            other => FactorError::Gpu(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant of both error types, with distinctive payloads.
    /// Keeping the lists here (rather than sampling one variant) makes
    /// adding a variant without a Display arm a compile error and
    /// without a payload check a test failure.
    fn factor_variants() -> Vec<(FactorError, &'static [&'static str])> {
        vec![
            (
                FactorError::NotPositiveDefinite { column: 17 },
                &["positive definite", "17"],
            ),
            (
                FactorError::PatternMismatch {
                    column: 3,
                    expected_nnz: 41,
                    found_nnz: 39,
                },
                &["pattern", "column 3", "41", "39"],
            ),
            (
                FactorError::GpuOutOfMemory {
                    requested_bytes: 1_000_000,
                    capacity_bytes: 65_536,
                },
                &["out of memory", "1000000", "65536"],
            ),
            (
                FactorError::Gpu("stream 2 failed".to_string()),
                &["GPU", "stream 2 failed"],
            ),
            (
                FactorError::DeviceFault(rlchol_gpu::DeviceError {
                    kind: rlchol_gpu::FaultKind::KernelFault,
                    index: 7,
                    transient: true,
                }),
                &["device fault", "kernel", "7", "transient"],
            ),
            (
                FactorError::DeadlineExceeded {
                    wall: Some(Duration::from_millis(250)),
                    sim_seconds: Some(1.5),
                },
                &["deadline", "250", "1.5"],
            ),
            (FactorError::Cancelled, &["cancelled"]),
            (
                FactorError::LanesExhausted {
                    cap: 4,
                    waited: Duration::from_millis(3000),
                },
                &["lanes", "4", "3000"],
            ),
        ]
    }

    fn solve_variants() -> Vec<(SolveError, &'static [&'static str])> {
        vec![
            (
                SolveError::RhsDimension {
                    expected: 100,
                    found: 99,
                },
                &["right-hand side", "100", "99"],
            ),
            (
                SolveError::SolutionDimension {
                    expected: 100,
                    found: 0,
                },
                &["solution", "100", "0"],
            ),
            (
                SolveError::MatrixDimension {
                    expected: 100,
                    found: 7,
                },
                &["matrix", "100", "7"],
            ),
            (
                SolveError::NonFinite { iteration: 2 },
                &["non-finite", "iteration 2"],
            ),
        ]
    }

    /// Every variant's Display output carries its payload — the context
    /// a `batch_factor` caller (or anyone boxing the error) relies on.
    #[test]
    fn every_variant_formats_with_full_context() {
        for (err, needles) in factor_variants() {
            let msg = format!("{err}");
            for needle in needles {
                assert!(msg.contains(needle), "{err:?}: `{msg}` lacks `{needle}`");
            }
            // Context survives type erasure (Box<dyn Error>, the shape
            // errors take when bubbled out of a serving loop).
            let boxed: Box<dyn std::error::Error> = Box::new(err.clone());
            assert_eq!(boxed.to_string(), msg);
        }
        for (err, needles) in solve_variants() {
            let msg = format!("{err}");
            for needle in needles {
                assert!(msg.contains(needle), "{err:?}: `{msg}` lacks `{needle}`");
            }
            let boxed: Box<dyn std::error::Error> = Box::new(err);
            assert_eq!(boxed.to_string(), msg);
        }
    }

    #[test]
    fn gpu_errors_convert_without_losing_detail() {
        let oom: FactorError = GpuError::OutOfMemory {
            requested_bytes: 9,
            capacity_bytes: 5,
            used_bytes: 4,
        }
        .into();
        assert_eq!(
            oom,
            FactorError::GpuOutOfMemory {
                requested_bytes: 9,
                capacity_bytes: 5
            }
        );
        let numerical: FactorError = GpuError::Numerical("pivot 12 not positive".into()).into();
        assert!(format!("{numerical}").contains("pivot 12 not positive"));
        let fault: FactorError = GpuError::Fault(rlchol_gpu::DeviceError {
            kind: rlchol_gpu::FaultKind::TransferFail,
            index: 3,
            transient: false,
        })
        .into();
        assert!(matches!(fault, FactorError::DeviceFault(_)));
    }

    /// The classification the degradation policy keys on: device errors
    /// fall back, transient device faults retry, everything else is
    /// terminal.
    #[test]
    fn degradation_classes_partition_the_variants() {
        for (err, _) in factor_variants() {
            let device = err.is_device();
            match &err {
                FactorError::DeviceFault(d) => {
                    assert!(device);
                    assert_eq!(err.is_transient(), d.transient);
                }
                FactorError::Gpu(_) | FactorError::GpuOutOfMemory { .. } => {
                    assert!(device);
                    assert!(!err.is_transient());
                }
                _ => {
                    assert!(!device, "{err:?} must be terminal");
                    assert!(!err.is_transient());
                }
            }
        }
    }
}
