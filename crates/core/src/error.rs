//! Errors of the numeric factorization engines.

use rlchol_gpu::GpuError;
use std::fmt;

/// Failure modes of a numeric factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A diagonal pivot was not strictly positive (matrix not SPD).
    NotPositiveDefinite { column: usize },
    /// The device could not satisfy the engine's memory demand — the
    /// paper's Table I failure mode for nlpkkt120 under RL.
    GpuOutOfMemory {
        requested_bytes: u64,
        capacity_bytes: u64,
    },
    /// Any other device-side failure.
    Gpu(String),
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            } => write!(
                f,
                "GPU out of memory: need {requested_bytes} B, capacity {capacity_bytes} B"
            ),
            FactorError::Gpu(msg) => write!(f, "GPU failure: {msg}"),
        }
    }
}

impl std::error::Error for FactorError {}

impl From<GpuError> for FactorError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::OutOfMemory {
                requested_bytes,
                capacity_bytes,
                ..
            } => FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            },
            GpuError::Numerical(msg) => {
                // Device POTRF failures carry the pivot message.
                FactorError::Gpu(msg)
            }
            other => FactorError::Gpu(other.to_string()),
        }
    }
}
