//! Assembly: scattering a supernode's update matrix into its ancestors.
//!
//! RL computes the full `r × r` (lower) update matrix `U = L₂₁ L₂₁ᵀ` of a
//! supernode and must *subtract* it from ancestor storage. Row/column `q`
//! of `U` corresponds to global index `rows[s][q]`; the target of column
//! `q` is the supernode containing that index, and every row below lands
//! at its relative index in the target's array (§II-A of the paper).
//!
//! The paper parallelizes these loops with OpenMP; [`assemble_update_par`]
//! is the equivalent scoped-thread version, splitting work by target
//! supernode (targets are disjoint arrays, so no synchronization is
//! needed).

use rlchol_symbolic::relind::relative_indices;
use rlchol_symbolic::SymbolicFactor;

/// One contiguous run of update columns aimed at a single target.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    /// First update-row position of the segment.
    pub(crate) lo: usize,
    /// One past the last update-row position.
    pub(crate) hi: usize,
    /// Target supernode.
    pub(crate) target: usize,
}

pub(crate) fn segments(sym: &SymbolicFactor, s: usize) -> Vec<Segment> {
    let rows = &sym.rows[s];
    let mut out = Vec::new();
    let mut k = 0;
    while k < rows.len() {
        let target = sym.sn.col_to_sn[rows[k]];
        let end = sym.sn.end_col(target);
        let hi = rows.partition_point(|&r| r < end);
        out.push(Segment { lo: k, hi, target });
        k = hi;
    }
    out
}

/// Scatters `-U` into the ancestors of supernode `s`. `upd` is the
/// `r × r` column-major update matrix (only the lower triangle is read).
/// Returns the number of entries assembled (the trace metric).
pub fn assemble_update(
    sym: &SymbolicFactor,
    data: &mut [Vec<f64>],
    s: usize,
    upd: &[f64],
    r: usize,
) -> usize {
    let rows = &sym.rows[s];
    debug_assert_eq!(rows.len(), r);
    let mut entries = 0usize;
    for seg in segments(sym, s) {
        entries += scatter_segment(sym, &mut data[seg.target], seg, rows, upd, r);
    }
    entries
}

/// Scatters one segment into its (already borrowed) target array.
pub(crate) fn scatter_segment(
    sym: &SymbolicFactor,
    target_arr: &mut [f64],
    seg: Segment,
    rows: &[usize],
    upd: &[f64],
    r: usize,
) -> usize {
    let p = seg.target;
    let first = sym.sn.first_col(p);
    let ncols = sym.sn_ncols(p);
    let len = sym.sn_len(p);
    // Relative indices of ALL update rows from `lo` on (they all appear in
    // the target's index list — see module docs in rlchol-symbolic).
    let rel = relative_indices(&rows[seg.lo..], first, ncols, &sym.rows[p]);
    let mut entries = 0usize;
    for jj in seg.lo..seg.hi {
        let tcol = rows[jj] - first;
        let dst = &mut target_arr[tcol * len..(tcol + 1) * len];
        let ucol = &upd[jj * r..(jj + 1) * r];
        for ii in jj..r {
            dst[rel[ii - seg.lo]] -= ucol[ii];
        }
        entries += r - jj;
    }
    entries
}

/// Pool-parallel assembly: each target supernode's segment is scattered
/// by a job on the persistent [`rlchol_dense::pool`], so the GPU engines'
/// host-side assembly overlaps across cores without per-call thread
/// spawns. Targets appear in increasing order, so progressive
/// `split_at_mut` hands each job a disjoint `&mut` array.
///
/// Bit-exactness: every entry is written by exactly the same subtraction,
/// in the same per-segment order, as [`assemble_update`] — segments only
/// move between lanes, so the result is bit-identical to the serial
/// scatter (unlike striped BLAS, where summation order may shift).
pub fn assemble_update_pool(
    sym: &SymbolicFactor,
    data: &mut [Vec<f64>],
    s: usize,
    upd: &[f64],
    r: usize,
) -> usize {
    let segs = segments(sym, s);
    if rlchol_dense::pool::global().threads() <= 1 || segs.len() <= 1 {
        return assemble_update(sym, data, s, upd, r);
    }
    let rows = &sym.rows[s];
    let total: std::sync::atomic::AtomicUsize = 0.into();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(segs.len());
    let mut rest: &mut [Vec<f64>] = data;
    let mut consumed = 0usize;
    for seg in &segs {
        let (head, tail) = rest.split_at_mut(seg.target - consumed + 1);
        let target_arr = head.last_mut().expect("nonempty split");
        rest = tail;
        consumed = seg.target + 1;
        let total = &total;
        let seg = *seg;
        tasks.push(Box::new(move || {
            let e = scatter_segment(sym, target_arr, seg, rows, upd, r);
            total.fetch_add(e, std::sync::atomic::Ordering::Relaxed);
        }));
    }
    rlchol_dense::pool::global().run(tasks);
    total.into_inner()
}

/// Parallel assembly: each target supernode's segment is scattered by a
/// scoped thread. Targets appear in increasing order, so progressive
/// `split_at_mut` hands each thread a disjoint `&mut` array.
pub fn assemble_update_par(
    sym: &SymbolicFactor,
    data: &mut [Vec<f64>],
    s: usize,
    upd: &[f64],
    r: usize,
    threads: usize,
) -> usize {
    let segs = segments(sym, s);
    if threads <= 1 || segs.len() <= 1 {
        return assemble_update(sym, data, s, upd, r);
    }
    let rows = &sym.rows[s];
    let total: std::sync::atomic::AtomicUsize = 0.into();
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec<f64>] = data;
        let mut consumed = 0usize;
        for seg in &segs {
            let (head, tail) = rest.split_at_mut(seg.target - consumed + 1);
            let target_arr = head.last_mut().expect("nonempty split");
            rest = tail;
            consumed = seg.target + 1;
            let total = &total;
            let seg = *seg;
            scope.spawn(move || {
                let e = scatter_segment(sym, target_arr, seg, rows, upd, r);
                total.fetch_add(e, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FactorData;
    use rlchol_sparse::{SymCsc, TripletMatrix};
    use rlchol_symbolic::supernodes::paper_fig1_edges;
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn fig1_sym() -> (SymbolicFactor, SymCsc) {
        let mut t = TripletMatrix::new(15, 15);
        for j in 0..15 {
            t.push(j, j, 4.0);
        }
        for (i, j) in paper_fig1_edges() {
            t.push(i, j, -1.0);
        }
        let a = SymCsc::from_lower_triplets(&t).unwrap();
        let opts = SymbolicOptions {
            merge: false,
            partition_refine: false,
            ..SymbolicOptions::default()
        };
        let sym = analyze(&a, &opts);
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn serial_and_parallel_assembly_agree() {
        let (sym, ap) = fig1_sym();
        // Pick the first supernode with >= 2 targets.
        let s = (0..sym.nsup())
            .find(|&s| {
                let segs = super::segments(&sym, s);
                segs.len() >= 2
            })
            .expect("fig1 has multi-target supernodes");
        let r = sym.rows[s].len();
        let upd: Vec<f64> = (0..r * r).map(|i| (i % 7) as f64 + 0.5).collect();
        let mut d1 = FactorData::load(&sym, &ap);
        let mut d2 = d1.clone();
        let e1 = assemble_update(&sym, &mut d1.sn, s, &upd, r);
        let e2 = assemble_update_par(&sym, &mut d2.sn, s, &upd, r, 4);
        assert_eq!(e1, e2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn pool_assembly_is_bit_identical_to_serial() {
        let (sym, ap) = fig1_sym();
        for s in 0..sym.nsup() {
            let r = sym.rows[s].len();
            if r == 0 {
                continue;
            }
            let upd: Vec<f64> = (0..r * r)
                .map(|i| ((i * 13) % 11) as f64 * 0.3 - 1.0)
                .collect();
            let mut d1 = FactorData::load(&sym, &ap);
            let mut d2 = d1.clone();
            let e1 = assemble_update(&sym, &mut d1.sn, s, &upd, r);
            let e2 = assemble_update_pool(&sym, &mut d2.sn, s, &upd, r);
            assert_eq!(e1, e2, "supernode {s}");
            assert_eq!(d1, d2, "supernode {s} must match bitwise");
        }
    }

    #[test]
    fn entries_count_is_lower_triangle() {
        let (sym, ap) = fig1_sym();
        let mut d = FactorData::load(&sym, &ap);
        for s in 0..sym.nsup() {
            let r = sym.rows[s].len();
            if r == 0 {
                continue;
            }
            let upd = vec![0.0; r * r];
            let e = assemble_update(&sym, &mut d.sn, s, &upd, r);
            assert_eq!(e, r * (r + 1) / 2, "supernode {s}");
        }
    }

    #[test]
    fn zero_update_is_identity() {
        let (sym, ap) = fig1_sym();
        let mut d = FactorData::load(&sym, &ap);
        let before = d.clone();
        for s in 0..sym.nsup() {
            let r = sym.rows[s].len();
            let upd = vec![0.0; r * r];
            assemble_update(&sym, &mut d.sn, s, &upd, r);
        }
        assert_eq!(d, before);
    }

    #[test]
    fn scatter_hits_expected_cells() {
        let (sym, ap) = fig1_sym();
        // Supernode containing original column 0 (J1): rows {5,6,13}
        // pre-permutation; after analyze's internal postorder the indices
        // move, so identify J1 as the supernode whose first column is the
        // image of column 0.
        let j1_col = sym.perm.new_of(0);
        let s = sym.sn.col_to_sn[j1_col];
        let r = sym.rows[s].len();
        assert_eq!(r, 3, "J1 keeps three below-diagonal rows");
        let mut upd = vec![0.0; r * r];
        // U[0,0] = 10 targets (rows[0], rows[0]).
        upd[0] = 10.0;
        let mut d = FactorData::load(&sym, &ap);
        let g = sym.rows[s][0];
        let before = d.get(&sym, g, g);
        assemble_update(&sym, &mut d.sn, s, &upd, r);
        let after = d.get(&sym, g, g);
        assert!((before - after - 10.0).abs() < 1e-14);
    }
}
