//! Pipelined multi-stream GPU executor over the frontier driver.
//!
//! The single-stream GPU engines ([`crate::gpu_rl`], [`crate::gpu_rlb`])
//! walk supernodes left to right on one compute/copy stream pair, so a
//! supernode's H2D waits behind its *predecessor's* kernels even when the
//! two live in disjoint subtrees. This executor splits scheduling into
//! two interleaved phases driven by the engine-agnostic [`Frontier`]:
//!
//! * **Issue (out of order).** Whenever a supernode becomes
//!   ready — all its updaters have been applied to host storage — its
//!   device phase (H2D, DPOTRF, DTRSM, async panel copy-back, update
//!   kernels, update D2H into a per-supernode host staging area) is
//!   enqueued on one of `RLCHOL_STREAMS` compute/copy stream pairs,
//!   chosen by the [`StreamAssign`] policy (round-robin by default;
//!   least-loaded — fewest supernodes in flight — via
//!   `GpuOptions::assign` or `RLCHOL_STREAM_ASSIGN=ll`).
//!   Each pair owns one panel buffer and one update/staging buffer;
//!   an [`Event`](rlchol_gpu::Event) recorded after the pair's previous
//!   occupant drains its copy stream gates buffer reuse, so arbitrarily
//!   deep per-stream queues stay safe. Independent supernodes on
//!   different pairs overlap kernels *and* transfers.
//! * **Retire.** Host-side effects — assembling staged updates, running
//!   below-threshold supernodes' CPU path, and releasing frontier
//!   targets — run in one of two modes selected by
//!   [`RetireMode`] (`GpuOptions::retire` / `RLCHOL_RETIRE`):
//!
//!   * [`RetireMode::InOrder`] (default): ascending supernode order,
//!     with a fixed `2 × pairs` lookahead window. The host waits on
//!     supernode `s`'s staging D2H before touching `s + 1` even when a
//!     later supernode's transfer completed long ago — simple, and
//!     bit-identical to the single-stream engines by construction.
//!   * [`RetireMode::Ooo`] (the asynchronous fan-both formulation of
//!     Jacquelin et al.): the host lands whichever in-flight supernode's
//!     staging D2H completes **earliest** on the simulated clock, then
//!     applies its updates subject to **per-target sequencing** — every
//!     destination supernode keeps a sequence cursor over its updaters
//!     (ascending source order, exactly the serial application order)
//!     and a landed source's update into a target is applied only when
//!     that target's cursor reaches it, deferring otherwise and
//!     cascading when the gap fills. Same subtractions on the same
//!     operands in the same per-target order as the serial engines, so
//!     the factor is **bit-identical** at any stream count for both
//!     variants; only the host-wait interleaving (and thus the simulated
//!     clock) changes. Frontier releases happen per applied update unit,
//!     so a target becomes ready the moment its last incoming update
//!     lands rather than when the global retire front passes. The
//!     lookahead window is **adaptive** by default (`RLCHOL_LOOKAHEAD=0`):
//!     it grows when issue is window-blocked while some stream pair
//!     idles, and shrinks toward the pair count while the device runs
//!     ahead of the host; a positive `RLCHOL_LOOKAHEAD` pins it.
//!
//! Deadline/cancel checkpoints ([`RunCtl`]) run inside the retire loop —
//! once per landed supernode in either mode — so a stalled stream or a
//! sim-budget overrun aborts mid-sweep instead of riding the schedule
//! out.
//!
//! Device memory scales with the pair count; when the per-pair buffers do
//! not all fit, the executor sheds pairs (fewer streams, same factor)
//! and only fails with [`FactorError::GpuOutOfMemory`] when even a
//! single pair exceeds capacity. A single RL pair is sized exactly like
//! [`crate::gpu_rl`], so RL-pipe fits whatever RL fits; the RLB pipeline
//! stages the *batched* (v1) footprint per pair, so matrices that only
//! v2's per-block streaming squeezes under capacity still need
//! [`crate::engine::Method::RlbGpuV2`] (streaming inside the pipeline is
//! an open ROADMAP item). A non-positive-definite pivot surfaces from the
//! eager device POTRF at issue time; when several supernodes are
//! indefinite, the reported column may differ from the serial engines'
//! (issue order is frontier order, not index order), but an error is
//! always raised before any factor is returned.
//!
//! ## Refactor-aware GPU residency
//!
//! Staged-handle lanes ([`crate::staged`]) set
//! `EngineWorkspace::residency_enabled`; the executor then keeps the
//! device — stream pairs, panel/update buffers, and the H2D-ed pattern
//! metadata (each offloaded supernode's row-index list, which a real
//! device-side scatter would consume) — alive in the workspace across
//! `refactor` calls. A warm run on the same symbolic key resets the
//! session clocks, skips the metadata uploads, and reports them in
//! `GpuRun::transfers_saved`. Residency is bypassed whenever a fault
//! plan is installed (fault ordinals must count from a fresh device) and
//! dropped on any error, so quarantine and recovery behave exactly as
//! without it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use rlchol_dense::syrk_ln;
use rlchol_gpu::{Buffer, Event, Gpu, StreamId, StreamRole};
use rlchol_perfmodel::{CpuModel, TraceOp};
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::assemble::{assemble_update_pool, scatter_segment, segments, Segment};
use crate::engine::{factor_panel, GpuOptions, GpuRun, RetireMode, StreamAssign};
use crate::error::FactorError;
use crate::gpu_rl::{map_device_pivot, offload_set};
use crate::gpu_rlb::{
    apply_strip, apply_strips_pool, cpu_direct_update, cpu_direct_update_target,
    launch_strip_kernel, strips_of, Strip,
};
use crate::registry::EngineWorkspace;
use crate::resilience::RunCtl;
use crate::storage::FactorData;

use super::driver::{distinct_targets, Frontier};

/// Which update formulation the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeVariant {
    /// One coarse SYRK per supernode; host scatters the update matrix
    /// (bit-identical to [`crate::gpu_rl::factor_rl_gpu`]).
    Rl,
    /// Per-block SYRK/GEMM strips into compacted staging, one transfer
    /// per supernode (the batched formulation — bit-identical to both
    /// RLB GPU versions whenever v2 leaves blocks unsplit).
    Rlb,
}

/// Pipelined multi-stream GPU-RL ([`crate::engine::Method::RlGpuPipe`]).
pub fn factor_rl_gpu_pipe(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    run_pipeline(
        sym,
        a,
        opts,
        PipeVariant::Rl,
        &mut EngineWorkspace::default(),
    )
}

/// [`factor_rl_gpu_pipe`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rl_gpu_pipe_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    run_pipeline(sym, a, opts, PipeVariant::Rl, ws)
}

/// Pipelined multi-stream GPU-RLB
/// ([`crate::engine::Method::RlbGpuPipe`]).
pub fn factor_rlb_gpu_pipe(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    run_pipeline(
        sym,
        a,
        opts,
        PipeVariant::Rlb,
        &mut EngineWorkspace::default(),
    )
}

/// [`factor_rlb_gpu_pipe`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rlb_gpu_pipe_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    run_pipeline(sym, a, opts, PipeVariant::Rlb, ws)
}

/// One compute/copy stream pair with its device working storage.
struct StreamCtx {
    compute: StreamId,
    copy: StreamId,
    panel_buf: Buffer,
    /// RL: the update-matrix buffer; RLB: the compacted staging buffer.
    upd_buf: Buffer,
    /// Drain point of the previous occupant's copy stream — both device
    /// buffers are reusable once it completes.
    gate: Option<Event>,
}

/// An issued-but-not-retired supernode.
struct InFlight {
    /// Host staging the update D2H landed in (empty when `r == 0`).
    staged: Vec<f64>,
    /// RLB: the strip set enumerated at issue time, reused verbatim for
    /// the retire-side scatter (empty for RL).
    strips: Vec<Strip>,
    /// Completion of the staging transfer; the host waits on it before
    /// assembling.
    ready: Event,
}

/// The staged update data of a landed source supernode, kept until every
/// one of its per-target units has been applied (out-of-order retirement
/// defers units whose target still awaits an earlier source).
struct LandedSource {
    /// RL: the `r × r` update matrix (device D2H or host SYRK); RLB GPU
    /// path: the compacted staging area. Empty on the RLB CPU path,
    /// whose units read the persistent final source panel instead.
    staged: Vec<f64>,
    /// RLB GPU path: the strip set (grouped contiguously by target).
    strips: Vec<Strip>,
    /// RL: one scatter segment per target, ascending.
    segs: Vec<Segment>,
    /// True when the source ran the below-threshold CPU path under the
    /// RLB variant — its units re-run the direct per-target kernels.
    rlb_cpu: bool,
    /// Update-matrix order (RL scatter geometry).
    r: usize,
    /// Units not yet applied; the staging is dropped at zero.
    units_left: usize,
}

/// Everything the per-run symbolic setup produced, shared by both
/// retirement loops.
struct PipeCtx<'a> {
    gpu: &'a Gpu,
    sym: &'a SymbolicFactor,
    on_gpu: &'a [bool],
    cpu: CpuModel,
    ctl: RunCtl,
    assign: StreamAssign,
    variant: PipeVariant,
}

fn run_pipeline(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    variant: PipeVariant,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    let t0 = Instant::now();
    let ctl = ws.ctl.clone();
    let mut data = ws.take_factor(sym, a);
    let cpu = opts.machine.cpu;
    let nsup = sym.nsup();

    let on_gpu = offload_set(sym, opts.threshold);
    let sn_on_gpu = on_gpu.iter().filter(|&&b| b).count();

    // Per-pair device working storage, sized like the single-stream
    // engines': the largest offloaded panel plus the largest update
    // matrix (RL) or compacted staging area (RLB).
    let max_panel = (0..nsup)
        .filter(|&s| on_gpu[s])
        .map(|s| sym.sn_storage(s))
        .max()
        .unwrap_or(0);
    let max_upd = (0..nsup)
        .filter(|&s| on_gpu[s])
        .map(|s| match variant {
            PipeVariant::Rl => sym.update_matrix_entries(s),
            PipeVariant::Rlb => strips_of(&sym.blocks[s]).1,
        })
        .max()
        .unwrap_or(0);
    let requested = opts.resolved_streams();
    let retire = opts.resolved_retire();
    let lookahead = opts.resolved_lookahead();

    // Residency: a warm lane workspace holds the previous run's device
    // (buffers + pattern metadata) under a key describing this symbolic
    // configuration. Fault plans bypass residency entirely — their
    // operation ordinals are only deterministic on a fresh device.
    let key = ResidencyKey {
        variant,
        requested,
        threshold: opts.threshold,
        max_panel,
        max_upd,
        nsup,
    };
    let use_residency = ws.residency_enabled && opts.faults.is_none();
    let prior = ws.residency.take();
    let warm = use_residency && prior.as_ref().is_some_and(|r| r.key == key);
    let (gpu, mut ctxs, mut meta_buf, mut meta_transfers, transfers_saved);
    if warm {
        let res = prior.expect("warm implies prior residency");
        res.gpu.reset_session();
        let mut cs = res.ctxs;
        for ctx in &mut cs {
            // Gate events carry the previous session's clock; the
            // buffers they guarded have long drained.
            ctx.gate = None;
        }
        transfers_saved = res.meta_transfers;
        meta_transfers = res.meta_transfers;
        meta_buf = res.meta_buf;
        gpu = res.gpu;
        ctxs = cs;
    } else {
        drop(prior); // stale key or residency off: release the old device
        gpu = opts.device();
        ctxs = alloc_stream_pairs(&gpu, requested.max(1), max_panel, max_upd)?;
        transfers_saved = 0;
        meta_transfers = 0;
        meta_buf = None;
    }
    gpu.set_blocking(!opts.overlap);
    let nstreams = ctxs.len();

    let mut residency_ok = use_residency;
    if residency_ok && !warm {
        // Cold resident run: upload the offloaded supernodes' row-index
        // pattern metadata (one H2D each into a concatenated buffer) so
        // warm refactorizations can skip exactly these transfers. If the
        // metadata does not fit alongside the working buffers, run cold
        // and give residency up for this lane size.
        match upload_pattern_metadata(&gpu, sym, &on_gpu, ctxs[0].copy) {
            Ok((buf, n)) => {
                meta_buf = buf;
                meta_transfers = n;
            }
            Err(_) => {
                residency_ok = false;
            }
        }
    }

    let ctx = PipeCtx {
        gpu: &gpu,
        sym,
        on_gpu: &on_gpu,
        cpu,
        ctl,
        assign: opts.resolved_assign(),
        variant,
    };
    let final_lookahead = match retire {
        RetireMode::InOrder => {
            run_inorder(&ctx, &mut data, &mut ctxs)?;
            0
        }
        RetireMode::Ooo => run_ooo(&ctx, &mut data, &mut ctxs, lookahead)?,
    };

    gpu.synchronize();
    let sim_seconds = gpu.elapsed();
    let stats = gpu.stats();
    if residency_ok {
        ws.residency = Some(GpuResidency {
            gpu,
            ctxs,
            meta_buf,
            meta_transfers,
            key,
        });
    }
    Ok(GpuRun {
        factor: data,
        sim_seconds,
        stats,
        sn_on_gpu,
        streams_used: nstreams,
        retire,
        lookahead: final_lookahead,
        transfers_saved,
        wall: t0.elapsed(),
    })
}

/// In-order retirement: host effects in ascending supernode order behind
/// a fixed `2 × pairs` issue window (the pre-async behavior, and the
/// bit-identity reference the out-of-order mode is tested against).
fn run_inorder(
    ctx: &PipeCtx<'_>,
    data: &mut FactorData,
    ctxs: &mut [StreamCtx],
) -> Result<(), FactorError> {
    let PipeCtx {
        gpu,
        sym,
        on_gpu,
        cpu,
        ctl,
        assign,
        variant,
    } = ctx;
    let (gpu, sym) = (*gpu, *sym);
    let nsup = sym.nsup();
    let nstreams = ctxs.len();

    let frontier = Frontier::new(sym);
    let mut heap: BinaryHeap<Reverse<usize>> =
        frontier.initial_ready().into_iter().map(Reverse).collect();
    let mut inflight: Vec<Option<InFlight>> = (0..nsup).map(|_| None).collect();
    let mut in_flight_count = 0usize;
    // Lookahead window: at most ~2 supernodes queued per stream pair.
    // Deeper queues would let early-ready leaves pile up in front of the
    // low-index supernodes that retire first, serializing retirement
    // against the whole backlog; ~1 executing + 1 queued per pair keeps
    // every stream fed while D2H results stay close to the retire front.
    let window = 2 * nstreams;
    let mut rr = 0usize; // round-robin stream cursor
                         // Issued-but-unretired supernodes per pair (least-loaded policy).
    let mut pair_load = vec![0usize; nstreams];
    // Which pair each in-flight supernode was issued on.
    let mut pair_of = vec![usize::MAX; nsup];
    let mut targets = Vec::new();
    // CPU-path scratch, reused across supernodes.
    let mut l11: Vec<f64> = Vec::new();
    let mut host_ws: Vec<f64> = Vec::new();

    for s in 0..nsup {
        // Deadline/cancel checkpoint, once per retirement step. The
        // simulated clock is what an injected stream stall inflates, so
        // a sim budget aborts the sweep instead of riding it out.
        ctl.check_sim(gpu.elapsed())?;
        // Issue phase: ready supernodes go to the device, lowest index
        // first (which both ties the round-robin to a deterministic
        // order and guarantees `s` itself — the minimum of the heap
        // whenever it is present — is never starved by the window).
        // CPU-path supernodes need no device work; they run at
        // retirement, so popping them here just consumes their readiness.
        while let Some(&Reverse(t)) = heap.peek() {
            if on_gpu[t] && in_flight_count >= window && t != s {
                break;
            }
            heap.pop();
            if on_gpu[t] {
                let pick = pick_pair(*assign, &pair_load, &mut rr);
                issue(gpu, sym, data, &mut ctxs[pick], t, *variant, &mut inflight)?;
                pair_load[pick] += 1;
                pair_of[t] = pick;
                in_flight_count += 1;
            }
        }

        // Retire phase: host effects in ascending supernode order.
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);
        if on_gpu[s] {
            let inf = inflight[s]
                .take()
                .expect("ascending retirement implies s was ready and issued");
            in_flight_count -= 1;
            pair_load[pair_of[s]] -= 1;
            if r > 0 {
                gpu.host_wait_event(inf.ready);
                let entries = match variant {
                    PipeVariant::Rl => assemble_update_pool(sym, &mut data.sn, s, &inf.staged, r),
                    PipeVariant::Rlb => apply_strips_pool(
                        sym,
                        &mut data.sn,
                        &sym.blocks[s],
                        &inf.strips,
                        &inf.staged,
                    ),
                };
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
        } else {
            // CPU path: identical kernels and model costs to the
            // single-stream engines' below-threshold branch.
            {
                let arr = &mut data.sn[s];
                factor_panel(arr, len, c, r, &mut l11).map_err(|pivot| {
                    FactorError::NotPositiveDefinite {
                        column: first + pivot,
                    }
                })?;
            }
            gpu.host_compute(
                cpu.op_time(&TraceOp::Potrf { n: c }) + cpu.op_time(&TraceOp::Trsm { m: r, n: c }),
            );
            if r > 0 {
                match variant {
                    PipeVariant::Rl => {
                        if host_ws.len() < r * r {
                            host_ws.resize(r * r, 0.0);
                        }
                        {
                            let arr = &data.sn[s];
                            syrk_ln(r, c, 1.0, &arr[c..], len, 0.0, &mut host_ws[..r * r], r);
                        }
                        gpu.host_compute(cpu.op_time(&TraceOp::Syrk { n: r, k: c }));
                        let entries =
                            assemble_update_pool(sym, &mut data.sn, s, &host_ws[..r * r], r);
                        gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
                    }
                    PipeVariant::Rlb => {
                        let mut host_seconds = 0.0;
                        cpu_direct_update(sym, &mut data.sn, s, c, len, cpu, &mut host_seconds);
                        gpu.host_compute(host_seconds);
                    }
                }
            }
        }

        distinct_targets(sym, s, &mut targets);
        for &p in &targets {
            if frontier.release(p) {
                heap.push(Reverse(p));
            }
        }
    }
    Ok(())
}

/// Out-of-order retirement with per-target sequencing: land whichever
/// in-flight supernode's staging completes earliest; apply each landed
/// source's updates the moment — and only the moment — the destination's
/// ascending-source cursor reaches them. Returns the final lookahead
/// window (the adaptive policy's last value, or the pinned one).
fn run_ooo(
    ctx: &PipeCtx<'_>,
    data: &mut FactorData,
    ctxs: &mut [StreamCtx],
    lookahead: usize,
) -> Result<usize, FactorError> {
    let PipeCtx {
        gpu,
        sym,
        on_gpu,
        cpu,
        ctl,
        assign,
        variant,
    } = ctx;
    let (gpu, sym) = (*gpu, *sym);
    let nsup = sym.nsup();
    let nstreams = ctxs.len();

    // Per-target updater lists (CSR): iterating sources in ascending
    // order makes each target's list ascend — the serial application
    // order the sequence cursors enforce.
    let mut upd_ptr = vec![0usize; nsup + 1];
    let mut targets = Vec::new();
    for s in 0..nsup {
        distinct_targets(sym, s, &mut targets);
        for &p in &targets {
            upd_ptr[p + 1] += 1;
        }
    }
    for p in 0..nsup {
        upd_ptr[p + 1] += upd_ptr[p];
    }
    let mut fill = upd_ptr.clone();
    let mut upd_list = vec![0usize; upd_ptr[nsup]];
    for s in 0..nsup {
        distinct_targets(sym, s, &mut targets);
        for &p in &targets {
            upd_list[fill[p]] = s;
            fill[p] += 1;
        }
    }
    // Next unapplied position in each target's updater list.
    let mut cursor = vec![0usize; nsup];

    let frontier = Frontier::new(sym);
    let mut heap: BinaryHeap<Reverse<usize>> =
        frontier.initial_ready().into_iter().map(Reverse).collect();
    let mut inflight: Vec<Option<InFlight>> = (0..nsup).map(|_| None).collect();
    let mut inflight_ids: Vec<usize> = Vec::new();
    let mut landed = vec![false; nsup];
    let mut stash: Vec<Option<LandedSource>> = (0..nsup).map(|_| None).collect();
    let mut landed_count = 0usize;

    let adaptive = lookahead == 0;
    let mut window = if adaptive { 2 * nstreams } else { lookahead };
    let mut rr = 0usize;
    let mut pair_load = vec![0usize; nstreams];
    let mut pair_of = vec![usize::MAX; nsup];
    let mut l11: Vec<f64> = Vec::new();

    while landed_count < nsup {
        // Deadline/cancel checkpoint, once per landed supernode.
        ctl.check_sim(gpu.elapsed())?;

        // Issue phase: pop ready supernodes ascending. GPU nodes go to
        // the device up to the window; CPU nodes execute on the host
        // immediately (their readiness means every incoming update has
        // been applied) and land on the spot.
        let mut blocked_issue = false;
        while let Some(&Reverse(t)) = heap.peek() {
            if on_gpu[t] && inflight_ids.len() >= window {
                blocked_issue = true;
                break;
            }
            heap.pop();
            if on_gpu[t] {
                let pick = pick_pair(*assign, &pair_load, &mut rr);
                issue(gpu, sym, data, &mut ctxs[pick], t, *variant, &mut inflight)?;
                pair_load[pick] += 1;
                pair_of[t] = pick;
                inflight_ids.push(t);
            } else {
                land_cpu_node(gpu, sym, data, cpu, *variant, t, &mut l11, &mut stash)?;
                landed[t] = true;
                landed_count += 1;
                cascade(
                    gpu,
                    sym,
                    data,
                    cpu,
                    *variant,
                    t,
                    &frontier,
                    &upd_ptr,
                    &upd_list,
                    &mut cursor,
                    &landed,
                    &mut stash,
                    &mut heap,
                    &mut targets,
                );
            }
        }
        if landed_count >= nsup {
            break;
        }

        // Retire step: land the in-flight supernode whose staging D2H
        // completes earliest (ties to the lowest index — deterministic).
        let k = inflight_ids
            .iter()
            .enumerate()
            .min_by(|&(_, &a), &(_, &b)| {
                let ta = inflight[a].as_ref().expect("in flight").ready.time();
                let tb = inflight[b].as_ref().expect("in flight").ready.time();
                ta.total_cmp(&tb).then(a.cmp(&b))
            })
            .map(|(k, _)| k)
            .expect("dependency graph is a DAG: work remains in flight");
        let s = inflight_ids.swap_remove(k);
        let inf = inflight[s].take().expect("selected from in-flight set");
        pair_load[pair_of[s]] -= 1;
        let device_ahead = inf.ready.time() <= gpu.host_now();
        gpu.host_wait_event(inf.ready);
        let r = sym.sn_nrows_below(s);
        stash[s] = (r > 0).then(|| LandedSource {
            segs: match variant {
                PipeVariant::Rl => segments(sym, s),
                PipeVariant::Rlb => Vec::new(),
            },
            staged: inf.staged,
            strips: inf.strips,
            rlb_cpu: false,
            r,
            units_left: 0, // set by cascade's first pass below
        });
        landed[s] = true;
        landed_count += 1;
        cascade(
            gpu,
            sym,
            data,
            cpu,
            *variant,
            s,
            &frontier,
            &upd_ptr,
            &upd_list,
            &mut cursor,
            &landed,
            &mut stash,
            &mut heap,
            &mut targets,
        );

        // Adaptive lookahead: widen when the window starved a pair
        // (issue was blocked while a pair sat idle), narrow toward the
        // pair count while the device finishes work before the host can
        // land it (the host is the bottleneck; depth only defers
        // retirement).
        if adaptive {
            if blocked_issue && pair_load.contains(&0) {
                window = (window + 1).min(nsup.max(1));
            } else if device_ahead {
                window = window.saturating_sub(1).max(nstreams.max(1));
            }
        }
    }
    Ok(window)
}

/// Executes a below-threshold supernode on the host at its pop from the
/// ready heap: panel factorization now, update staging for the
/// per-target applications later. RL stages the host SYRK's `r × r`
/// update matrix; RLB defers entirely to the direct per-target kernels
/// reading the (now final) source panel.
#[allow(clippy::too_many_arguments)]
fn land_cpu_node(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    data: &mut FactorData,
    cpu: &CpuModel,
    variant: PipeVariant,
    s: usize,
    l11: &mut Vec<f64>,
    stash: &mut [Option<LandedSource>],
) -> Result<(), FactorError> {
    let c = sym.sn_ncols(s);
    let r = sym.sn_nrows_below(s);
    let len = sym.sn_len(s);
    let first = sym.sn.first_col(s);
    {
        let arr = &mut data.sn[s];
        factor_panel(arr, len, c, r, l11).map_err(|pivot| FactorError::NotPositiveDefinite {
            column: first + pivot,
        })?;
    }
    gpu.host_compute(
        cpu.op_time(&TraceOp::Potrf { n: c }) + cpu.op_time(&TraceOp::Trsm { m: r, n: c }),
    );
    if r == 0 {
        return Ok(());
    }
    stash[s] = Some(match variant {
        PipeVariant::Rl => {
            let mut staged = vec![0.0f64; r * r];
            {
                let arr = &data.sn[s];
                syrk_ln(r, c, 1.0, &arr[c..], len, 0.0, &mut staged, r);
            }
            gpu.host_compute(cpu.op_time(&TraceOp::Syrk { n: r, k: c }));
            LandedSource {
                staged,
                strips: Vec::new(),
                segs: segments(sym, s),
                rlb_cpu: false,
                r,
                units_left: 0,
            }
        }
        PipeVariant::Rlb => LandedSource {
            staged: Vec::new(),
            strips: Vec::new(),
            segs: Vec::new(),
            rlb_cpu: true,
            r,
            units_left: 0,
        },
    });
    Ok(())
}

/// After source `s` lands, advance every one of its targets' sequence
/// cursors: apply each target's next-expected updates while they are
/// landed (possibly from sources that landed long ago), releasing the
/// frontier once per applied unit. Per-target application order is
/// always ascending source — the serial order — regardless of landing
/// order, which is what keeps the factor bit-identical.
#[allow(clippy::too_many_arguments)]
fn cascade(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    data: &mut FactorData,
    cpu: &CpuModel,
    variant: PipeVariant,
    s: usize,
    frontier: &Frontier,
    upd_ptr: &[usize],
    upd_list: &[usize],
    cursor: &mut [usize],
    landed: &[bool],
    stash: &mut [Option<LandedSource>],
    heap: &mut BinaryHeap<Reverse<usize>>,
    targets: &mut Vec<usize>,
) {
    distinct_targets(sym, s, targets);
    if let Some(st) = stash[s].as_mut() {
        st.units_left = targets.len();
    }
    for &p in targets.iter() {
        while cursor[p] < upd_ptr[p + 1] - upd_ptr[p] {
            let q = upd_list[upd_ptr[p] + cursor[p]];
            if !landed[q] {
                break;
            }
            apply_unit(gpu, sym, data, cpu, variant, q, p, stash);
            cursor[p] += 1;
            if frontier.release(p) {
                heap.push(Reverse(p));
            }
        }
    }
}

/// Applies source `q`'s update unit into target `p` — the out-of-order
/// analogue of one segment of the in-order retire phase, with identical
/// kernels and operands.
#[allow(clippy::too_many_arguments)]
fn apply_unit(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    data: &mut FactorData,
    cpu: &CpuModel,
    variant: PipeVariant,
    q: usize,
    p: usize,
    stash: &mut [Option<LandedSource>],
) {
    let exhausted = {
        let st = stash[q]
            .as_mut()
            .expect("landed sources with targets stash");
        match variant {
            PipeVariant::Rl => {
                let at = st
                    .segs
                    .binary_search_by_key(&p, |g| g.target)
                    .expect("p is a distinct target of q");
                let entries = scatter_segment(
                    sym,
                    &mut data.sn[p],
                    st.segs[at],
                    &sym.rows[q],
                    &st.staged,
                    st.r,
                );
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
            PipeVariant::Rlb if st.rlb_cpu => {
                let c = sym.sn_ncols(q);
                let len = sym.sn_len(q);
                let mut host_seconds = 0.0;
                cpu_direct_update_target(sym, &mut data.sn, q, p, c, len, cpu, &mut host_seconds);
                gpu.host_compute(host_seconds);
            }
            PipeVariant::Rlb => {
                let blocks = &sym.blocks[q];
                let mut entries = 0usize;
                for strip in st.strips.iter().filter(|t| blocks[t.b1].target == p) {
                    entries += apply_strip(
                        sym,
                        &mut data.sn[p],
                        blocks,
                        strip,
                        &st.staged[strip.stage_off..strip.stage_off + strip.m * strip.n],
                    );
                }
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
        }
        st.units_left -= 1;
        st.units_left == 0
    };
    if exhausted {
        stash[q] = None; // free the staging as soon as its last unit lands
    }
}

/// Picks the stream pair for the next issued supernode. Either policy
/// leaves the factor unchanged (retirement order does not depend on it);
/// only queue shapes — and thus utilization — differ.
fn pick_pair(assign: StreamAssign, pair_load: &[usize], rr: &mut usize) -> usize {
    match assign {
        StreamAssign::RoundRobin => {
            let p = *rr % pair_load.len();
            *rr += 1;
            p
        }
        // Fewest in flight, ties to the lowest pair index
        // (the first minimum `min_by_key` finds).
        StreamAssign::LeastLoaded => pair_load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .expect("at least one stream pair"),
    }
}

/// Key describing the symbolic configuration a resident device was built
/// for; a refactorization may only reuse the device when it matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResidencyKey {
    variant: PipeVariant,
    requested: usize,
    threshold: usize,
    max_panel: usize,
    max_upd: usize,
    nsup: usize,
}

/// A device kept alive across staged-handle refactorizations: stream
/// pairs with their buffers plus the uploaded pattern metadata. Held in
/// [`EngineWorkspace::residency`] between runs of the same lane.
pub(crate) struct GpuResidency {
    gpu: Gpu,
    ctxs: Vec<StreamCtx>,
    /// Concatenated row-index metadata of the offloaded supernodes.
    meta_buf: Option<Buffer>,
    /// H2D transfers the metadata upload took — what a warm run saves.
    meta_transfers: u64,
    key: ResidencyKey,
}

impl std::fmt::Debug for GpuResidency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuResidency")
            .field("streams", &self.ctxs.len())
            .field("meta_buf", &self.meta_buf)
            .field("meta_transfers", &self.meta_transfers)
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// Uploads each offloaded supernode's row-index list (as `f64`, the only
/// element type the simulated device stores) into one concatenated
/// device buffer — the pattern metadata a device-side scatter consumes,
/// and the transfers a warm resident refactorization skips. Returns the
/// buffer and the transfer count.
fn upload_pattern_metadata(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    on_gpu: &[bool],
    stream: StreamId,
) -> Result<(Option<Buffer>, u64), rlchol_gpu::GpuError> {
    let total: usize = (0..sym.nsup())
        .filter(|&s| on_gpu[s])
        .map(|s| sym.rows[s].len())
        .sum();
    if total == 0 {
        return Ok((None, 0));
    }
    let buf = gpu.alloc(total)?;
    let mut off = 0usize;
    let mut count = 0u64;
    let mut scratch: Vec<f64> = Vec::new();
    for s in (0..sym.nsup()).filter(|&s| on_gpu[s]) {
        let rows = &sym.rows[s];
        if rows.is_empty() {
            continue;
        }
        scratch.clear();
        scratch.extend(rows.iter().map(|&r| r as f64));
        if let Err(e) = gpu.memcpy_h2d(stream, buf, off, &scratch) {
            let _ = gpu.free(buf);
            return Err(e);
        }
        off += rows.len();
        count += 1;
    }
    Ok((Some(buf), count))
}

/// Allocates up to `requested` compute/copy pairs with their buffers,
/// shedding pairs that no longer fit device memory. Errors only when not
/// even one pair fits (the single-stream engines' OOM condition).
fn alloc_stream_pairs(
    gpu: &Gpu,
    requested: usize,
    max_panel: usize,
    max_upd: usize,
) -> Result<Vec<StreamCtx>, FactorError> {
    let mut bufs: Vec<(Buffer, Buffer)> = Vec::with_capacity(requested);
    let mut first_err = None;
    for _ in 0..requested {
        match gpu.alloc(max_panel) {
            Ok(panel) => match gpu.alloc(max_upd) {
                Ok(upd) => bufs.push((panel, upd)),
                Err(e) => {
                    let _ = gpu.free(panel);
                    first_err = Some(e);
                    break;
                }
            },
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    if bufs.is_empty() {
        return Err(first_err.expect("requested >= 1").into());
    }
    Ok(bufs
        .into_iter()
        .enumerate()
        .map(|(i, (panel_buf, upd_buf))| {
            let compute = if i == 0 {
                gpu.default_stream()
            } else {
                gpu.create_stream()
            };
            let copy = gpu.create_stream();
            gpu.set_stream_role(compute, StreamRole::Compute);
            gpu.set_stream_role(copy, StreamRole::Copy);
            StreamCtx {
                compute,
                copy,
                panel_buf,
                upd_buf,
                gate: None,
            }
        })
        .collect())
}

/// Enqueues supernode `s`'s whole device phase on `ctx` and records it in
/// flight. The simulated runtime executes kernels eagerly, so a
/// non-positive-definite pivot surfaces here.
fn issue(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    data: &mut FactorData,
    ctx: &mut StreamCtx,
    s: usize,
    variant: PipeVariant,
    inflight: &mut [Option<InFlight>],
) -> Result<(), FactorError> {
    let c = sym.sn_ncols(s);
    let r = sym.sn_nrows_below(s);
    let len = sym.sn_len(s);
    let first = sym.sn.first_col(s);

    // The pair's buffers may still feed the previous occupant's
    // transfers; its gate event marks both drained.
    if let Some(ev) = ctx.gate.take() {
        gpu.stream_wait_event(ctx.compute, ev);
    }
    gpu.memcpy_h2d(ctx.compute, ctx.panel_buf, 0, &data.sn[s])?;
    gpu.potrf(ctx.compute, ctx.panel_buf, 0, c, len)
        .map_err(map_device_pivot(first))?;
    gpu.trsm_panel(ctx.compute, ctx.panel_buf, 0, len, c, r)?;
    // Asynchronous panel copy-back on the pair's copy stream.
    let factored = gpu.record_event(ctx.compute);
    gpu.stream_wait_event(ctx.copy, factored);
    gpu.memcpy_d2h(ctx.copy, ctx.panel_buf, 0, &mut data.sn[s])?;

    let mut staged = Vec::new();
    let mut strips = Vec::new();
    if r > 0 {
        match variant {
            PipeVariant::Rl => {
                gpu.syrk(
                    ctx.compute,
                    ctx.panel_buf,
                    c,
                    len,
                    r,
                    c,
                    1.0,
                    0.0,
                    ctx.upd_buf,
                    0,
                    r,
                )?;
                staged = vec![0.0f64; r * r];
            }
            PipeVariant::Rlb => {
                let blocks = &sym.blocks[s];
                let stage_len;
                (strips, stage_len) = strips_of(blocks);
                for st in &strips {
                    launch_strip_kernel(
                        gpu,
                        ctx.compute,
                        ctx.panel_buf,
                        ctx.upd_buf,
                        st,
                        blocks,
                        c,
                        len,
                    )?;
                }
                staged = vec![0.0f64; stage_len];
            }
        }
        let computed = gpu.record_event(ctx.compute);
        gpu.stream_wait_event(ctx.copy, computed);
        gpu.memcpy_d2h(ctx.copy, ctx.upd_buf, 0, &mut staged)?;
    }
    let ready = gpu.record_event(ctx.copy);
    ctx.gate = Some(ready);
    inflight[s] = Some(InFlight {
        staged,
        strips,
        ready,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_rl::factor_rl_gpu;
    use crate::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
    use rlchol_matgen::{laplace2d, laplace3d};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, rlchol_sparse::SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn rl_pipe_bit_identical_across_stream_counts() {
        let a = laplace3d(6, 41);
        let (sym, ap) = setup(&a);
        for threshold in [0usize, 500] {
            let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(threshold)).unwrap();
            for streams in [1usize, 2, 4] {
                for retire in [RetireMode::InOrder, RetireMode::Ooo] {
                    let opts = GpuOptions::with_threshold(threshold)
                        .with_streams(streams)
                        .with_retire(retire);
                    let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
                    assert_eq!(run.streams_used, streams);
                    assert_eq!(run.retire, retire);
                    assert_eq!(
                        base.factor.sn, run.factor.sn,
                        "thr {threshold} streams {streams} {retire:?}: must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn rlb_pipe_bit_identical_to_both_single_stream_versions() {
        let a = laplace2d(14, 42);
        let (sym, ap) = setup(&a);
        let opts1 = GpuOptions::with_threshold(0);
        let v1 = factor_rlb_gpu(&sym, &ap, &opts1, RlbGpuVersion::V1).unwrap();
        let v2 = factor_rlb_gpu(&sym, &ap, &opts1, RlbGpuVersion::V2).unwrap();
        // At full capacity v2 never splits blocks, so all three agree.
        assert_eq!(v1.factor.sn, v2.factor.sn);
        for streams in [1usize, 3] {
            for retire in [RetireMode::InOrder, RetireMode::Ooo] {
                let run = factor_rlb_gpu_pipe(
                    &sym,
                    &ap,
                    &opts1.clone().with_streams(streams).with_retire(retire),
                )
                .unwrap();
                assert_eq!(v1.factor.sn, run.factor.sn, "streams {streams} {retire:?}");
            }
        }
    }

    #[test]
    fn ooo_with_hybrid_threshold_is_bit_identical() {
        // Mixed CPU/GPU supernodes exercise the per-target sequencing
        // across both landing paths (host SYRK stash and device D2H).
        let a = laplace3d(6, 44);
        let (sym, ap) = setup(&a);
        let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(300)).unwrap();
        for lookahead in [0usize, 1, 7] {
            let opts = GpuOptions::with_threshold(300)
                .with_streams(4)
                .with_retire(RetireMode::Ooo)
                .with_lookahead(lookahead);
            let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
            assert_eq!(
                base.factor.sn, run.factor.sn,
                "lookahead {lookahead}: must be bit-identical"
            );
            if lookahead > 0 {
                assert_eq!(run.lookahead, lookahead, "pinned window must be reported");
            } else {
                assert!(run.lookahead >= 1, "adaptive window must be reported");
            }
        }
    }

    #[test]
    fn least_loaded_assignment_is_bit_identical_and_never_slower_to_issue() {
        // Any assignment policy must produce the single-stream factor
        // (retirement sequencing is per target regardless of which pair
        // ran what).
        let a = laplace3d(6, 43);
        let (sym, ap) = setup(&a);
        let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
        for streams in [1usize, 2, 4] {
            for retire in [RetireMode::InOrder, RetireMode::Ooo] {
                let opts = GpuOptions::with_threshold(0)
                    .with_streams(streams)
                    .with_assign(StreamAssign::LeastLoaded)
                    .with_retire(retire);
                let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
                assert_eq!(run.streams_used, streams);
                assert_eq!(
                    base.factor.sn, run.factor.sn,
                    "least-loaded streams {streams} {retire:?}: must be bit-identical"
                );
            }
        }
    }

    // The 1 -> 2 stream strict-speedup property and the ooo-beats-inorder
    // property are covered by tests/pipelined_gpu.rs on ND-ordered 3-D
    // grids; a natural band order collapses the tree to a path where no
    // engine can overlap anything, so such checks must order first.
}
