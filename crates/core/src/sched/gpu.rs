//! Pipelined multi-stream GPU executor over the frontier driver.
//!
//! The single-stream GPU engines ([`crate::gpu_rl`], [`crate::gpu_rlb`])
//! walk supernodes left to right on one compute/copy stream pair, so a
//! supernode's H2D waits behind its *predecessor's* kernels even when the
//! two live in disjoint subtrees. This executor splits scheduling into
//! two interleaved phases driven by the engine-agnostic [`Frontier`]:
//!
//! * **Issue (out of order).** Whenever a supernode becomes
//!   ready — all its updaters have been applied to host storage — its
//!   device phase (H2D, DPOTRF, DTRSM, async panel copy-back, update
//!   kernels, update D2H into a per-supernode host staging area) is
//!   enqueued on one of `RLCHOL_STREAMS` compute/copy stream pairs,
//!   chosen by the [`StreamAssign`] policy (round-robin by default;
//!   least-loaded — fewest supernodes in flight — via
//!   `GpuOptions::assign` or `RLCHOL_STREAM_ASSIGN=ll`).
//!   Each pair owns one panel buffer and one update/staging buffer;
//!   an [`Event`](rlchol_gpu::Event) recorded after the pair's previous
//!   occupant drains its copy stream gates buffer reuse, so arbitrarily
//!   deep per-stream queues stay safe. Independent supernodes on
//!   different pairs overlap kernels *and* transfers.
//! * **Retire (in order).** Host-side effects — assembling staged
//!   updates (fanned out over [`rlchol_dense::pool`], one job per target),
//!   running below-threshold supernodes' CPU path, and releasing frontier
//!   targets — happen in ascending supernode order. Updates therefore hit
//!   every target in exactly the serial order, which makes the factor
//!   **bit-identical** to the single-stream engines at any stream count;
//!   one stream pair is the degenerate case (issue order collapses to
//!   retirement order).
//!
//! Device memory scales with the pair count; when the per-pair buffers do
//! not all fit, the executor sheds pairs (fewer streams, same factor)
//! and only fails with [`FactorError::GpuOutOfMemory`] when even a
//! single pair exceeds capacity. A single RL pair is sized exactly like
//! [`crate::gpu_rl`], so RL-pipe fits whatever RL fits; the RLB pipeline
//! stages the *batched* (v1) footprint per pair, so matrices that only
//! v2's per-block streaming squeezes under capacity still need
//! [`crate::engine::Method::RlbGpuV2`] (streaming inside the pipeline is
//! an open ROADMAP item). A non-positive-definite pivot surfaces from the
//! eager device POTRF at issue time; when several supernodes are
//! indefinite, the reported column may differ from the serial engines'
//! (issue order is frontier order, not index order), but an error is
//! always raised before any factor is returned.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use rlchol_dense::syrk_ln;
use rlchol_gpu::{Buffer, Event, Gpu, StreamId};
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::assemble::assemble_update_pool;
use crate::engine::{factor_panel, GpuOptions, GpuRun, StreamAssign};
use crate::error::FactorError;
use crate::gpu_rl::{map_device_pivot, offload_set};
use crate::gpu_rlb::{apply_strips_pool, cpu_direct_update, launch_strip_kernel, strips_of, Strip};
use crate::registry::EngineWorkspace;
use crate::storage::FactorData;

use super::driver::{distinct_targets, Frontier};

/// Which update formulation the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeVariant {
    /// One coarse SYRK per supernode; host scatters the update matrix
    /// (bit-identical to [`crate::gpu_rl::factor_rl_gpu`]).
    Rl,
    /// Per-block SYRK/GEMM strips into compacted staging, one transfer
    /// per supernode (the batched formulation — bit-identical to both
    /// RLB GPU versions whenever v2 leaves blocks unsplit).
    Rlb,
}

/// Pipelined multi-stream GPU-RL ([`crate::engine::Method::RlGpuPipe`]).
pub fn factor_rl_gpu_pipe(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    run_pipeline(
        sym,
        a,
        opts,
        PipeVariant::Rl,
        &mut EngineWorkspace::default(),
    )
}

/// [`factor_rl_gpu_pipe`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rl_gpu_pipe_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    run_pipeline(sym, a, opts, PipeVariant::Rl, ws)
}

/// Pipelined multi-stream GPU-RLB
/// ([`crate::engine::Method::RlbGpuPipe`]).
pub fn factor_rlb_gpu_pipe(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    run_pipeline(
        sym,
        a,
        opts,
        PipeVariant::Rlb,
        &mut EngineWorkspace::default(),
    )
}

/// [`factor_rlb_gpu_pipe`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rlb_gpu_pipe_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    run_pipeline(sym, a, opts, PipeVariant::Rlb, ws)
}

/// One compute/copy stream pair with its device working storage.
struct StreamCtx {
    compute: StreamId,
    copy: StreamId,
    panel_buf: Buffer,
    /// RL: the update-matrix buffer; RLB: the compacted staging buffer.
    upd_buf: Buffer,
    /// Drain point of the previous occupant's copy stream — both device
    /// buffers are reusable once it completes.
    gate: Option<Event>,
}

/// An issued-but-not-retired supernode.
struct InFlight {
    /// Host staging the update D2H landed in (empty when `r == 0`).
    staged: Vec<f64>,
    /// RLB: the strip set enumerated at issue time, reused verbatim for
    /// the retire-side scatter (empty for RL).
    strips: Vec<Strip>,
    /// Completion of the staging transfer; the host waits on it before
    /// assembling.
    ready: Event,
}

fn run_pipeline(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    variant: PipeVariant,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    let t0 = Instant::now();
    let ctl = ws.ctl.clone();
    let mut data = ws.take_factor(sym, a);
    let gpu = opts.device();
    gpu.set_blocking(!opts.overlap);
    let cpu = opts.machine.cpu;
    let nsup = sym.nsup();

    let on_gpu = offload_set(sym, opts.threshold);
    let sn_on_gpu = on_gpu.iter().filter(|&&b| b).count();

    // Per-pair device working storage, sized like the single-stream
    // engines': the largest offloaded panel plus the largest update
    // matrix (RL) or compacted staging area (RLB).
    let max_panel = (0..nsup)
        .filter(|&s| on_gpu[s])
        .map(|s| sym.sn_storage(s))
        .max()
        .unwrap_or(0);
    let max_upd = (0..nsup)
        .filter(|&s| on_gpu[s])
        .map(|s| match variant {
            PipeVariant::Rl => sym.update_matrix_entries(s),
            PipeVariant::Rlb => strips_of(&sym.blocks[s]).1,
        })
        .max()
        .unwrap_or(0);
    let requested = opts.resolved_streams();
    let ctxs = alloc_stream_pairs(&gpu, requested.max(1), max_panel, max_upd)?;
    let nstreams = ctxs.len();
    let mut ctxs = ctxs;

    let frontier = Frontier::new(sym);
    let mut heap: BinaryHeap<Reverse<usize>> =
        frontier.initial_ready().into_iter().map(Reverse).collect();
    let mut inflight: Vec<Option<InFlight>> = (0..nsup).map(|_| None).collect();
    let mut in_flight_count = 0usize;
    // Lookahead window: at most ~2 supernodes queued per stream pair.
    // Deeper queues would let early-ready leaves pile up in front of the
    // low-index supernodes that retire first, serializing retirement
    // against the whole backlog; ~1 executing + 1 queued per pair keeps
    // every stream fed while D2H results stay close to the retire front.
    let window = 2 * nstreams;
    // Pair assignment: round-robin unless opts / RLCHOL_STREAM_ASSIGN
    // select least-loaded. Either way retirement below stays in
    // ascending order, so the factor is identical; the policy only
    // changes which pair's queue each supernode waits in. (Workspace
    // lanes pre-resolve both the policy and the pair count, so
    // concurrent lane factorizations never hit the env fallbacks here.)
    let assign = opts.resolved_assign();
    let mut rr = 0usize; // round-robin stream cursor
                         // Issued-but-unretired supernodes per pair (least-loaded policy).
    let mut pair_load = vec![0usize; nstreams];
    // Which pair each in-flight supernode was issued on.
    let mut pair_of = vec![usize::MAX; nsup];
    let mut targets = Vec::new();
    // CPU-path scratch, reused across supernodes.
    let mut l11: Vec<f64> = Vec::new();
    let mut host_ws: Vec<f64> = Vec::new();

    for s in 0..nsup {
        // Deadline/cancel checkpoint, once per retirement step. The
        // simulated clock is what an injected stream stall inflates, so
        // a sim budget aborts the sweep instead of riding it out.
        ctl.check_sim(gpu.elapsed())?;
        // Issue phase: ready supernodes go to the device, lowest index
        // first (which both ties the round-robin to a deterministic
        // order and guarantees `s` itself — the minimum of the heap
        // whenever it is present — is never starved by the window).
        // CPU-path supernodes need no device work; they run at
        // retirement, so popping them here just consumes their readiness.
        while let Some(&Reverse(t)) = heap.peek() {
            if on_gpu[t] && in_flight_count >= window && t != s {
                break;
            }
            heap.pop();
            if on_gpu[t] {
                let pick = match assign {
                    StreamAssign::RoundRobin => {
                        let p = rr % nstreams;
                        rr += 1;
                        p
                    }
                    // Fewest in flight, ties to the lowest pair index
                    // (the first minimum `min_by_key` finds).
                    StreamAssign::LeastLoaded => pair_load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &l)| l)
                        .map(|(i, _)| i)
                        .expect("at least one stream pair"),
                };
                issue(
                    &gpu,
                    sym,
                    &mut data,
                    &mut ctxs[pick],
                    t,
                    variant,
                    &mut inflight,
                )?;
                pair_load[pick] += 1;
                pair_of[t] = pick;
                in_flight_count += 1;
            }
        }

        // Retire phase: host effects in ascending supernode order.
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);
        if on_gpu[s] {
            let inf = inflight[s]
                .take()
                .expect("ascending retirement implies s was ready and issued");
            in_flight_count -= 1;
            pair_load[pair_of[s]] -= 1;
            if r > 0 {
                gpu.host_wait_event(inf.ready);
                let entries = match variant {
                    PipeVariant::Rl => assemble_update_pool(sym, &mut data.sn, s, &inf.staged, r),
                    PipeVariant::Rlb => apply_strips_pool(
                        sym,
                        &mut data.sn,
                        &sym.blocks[s],
                        &inf.strips,
                        &inf.staged,
                    ),
                };
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
        } else {
            // CPU path: identical kernels and model costs to the
            // single-stream engines' below-threshold branch.
            {
                let arr = &mut data.sn[s];
                factor_panel(arr, len, c, r, &mut l11).map_err(|pivot| {
                    FactorError::NotPositiveDefinite {
                        column: first + pivot,
                    }
                })?;
            }
            gpu.host_compute(
                cpu.op_time(&TraceOp::Potrf { n: c }) + cpu.op_time(&TraceOp::Trsm { m: r, n: c }),
            );
            if r > 0 {
                match variant {
                    PipeVariant::Rl => {
                        if host_ws.len() < r * r {
                            host_ws.resize(r * r, 0.0);
                        }
                        {
                            let arr = &data.sn[s];
                            syrk_ln(r, c, 1.0, &arr[c..], len, 0.0, &mut host_ws[..r * r], r);
                        }
                        gpu.host_compute(cpu.op_time(&TraceOp::Syrk { n: r, k: c }));
                        let entries =
                            assemble_update_pool(sym, &mut data.sn, s, &host_ws[..r * r], r);
                        gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
                    }
                    PipeVariant::Rlb => {
                        let mut host_seconds = 0.0;
                        cpu_direct_update(sym, &mut data.sn, s, c, len, &cpu, &mut host_seconds);
                        gpu.host_compute(host_seconds);
                    }
                }
            }
        }

        distinct_targets(sym, s, &mut targets);
        for &p in &targets {
            if frontier.release(p) {
                heap.push(Reverse(p));
            }
        }
    }

    gpu.synchronize();
    Ok(GpuRun {
        factor: data,
        sim_seconds: gpu.elapsed(),
        stats: gpu.stats(),
        sn_on_gpu,
        streams_used: nstreams,
        wall: t0.elapsed(),
    })
}

/// Allocates up to `requested` compute/copy pairs with their buffers,
/// shedding pairs that no longer fit device memory. Errors only when not
/// even one pair fits (the single-stream engines' OOM condition).
fn alloc_stream_pairs(
    gpu: &Gpu,
    requested: usize,
    max_panel: usize,
    max_upd: usize,
) -> Result<Vec<StreamCtx>, FactorError> {
    let mut bufs: Vec<(Buffer, Buffer)> = Vec::with_capacity(requested);
    let mut first_err = None;
    for _ in 0..requested {
        match gpu.alloc(max_panel) {
            Ok(panel) => match gpu.alloc(max_upd) {
                Ok(upd) => bufs.push((panel, upd)),
                Err(e) => {
                    let _ = gpu.free(panel);
                    first_err = Some(e);
                    break;
                }
            },
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    if bufs.is_empty() {
        return Err(first_err.expect("requested >= 1").into());
    }
    Ok(bufs
        .into_iter()
        .enumerate()
        .map(|(i, (panel_buf, upd_buf))| StreamCtx {
            compute: if i == 0 {
                gpu.default_stream()
            } else {
                gpu.create_stream()
            },
            copy: gpu.create_stream(),
            panel_buf,
            upd_buf,
            gate: None,
        })
        .collect())
}

/// Enqueues supernode `s`'s whole device phase on `ctx` and records it in
/// flight. The simulated runtime executes kernels eagerly, so a
/// non-positive-definite pivot surfaces here.
fn issue(
    gpu: &Gpu,
    sym: &SymbolicFactor,
    data: &mut FactorData,
    ctx: &mut StreamCtx,
    s: usize,
    variant: PipeVariant,
    inflight: &mut [Option<InFlight>],
) -> Result<(), FactorError> {
    let c = sym.sn_ncols(s);
    let r = sym.sn_nrows_below(s);
    let len = sym.sn_len(s);
    let first = sym.sn.first_col(s);

    // The pair's buffers may still feed the previous occupant's
    // transfers; its gate event marks both drained.
    if let Some(ev) = ctx.gate.take() {
        gpu.stream_wait_event(ctx.compute, ev);
    }
    gpu.memcpy_h2d(ctx.compute, ctx.panel_buf, 0, &data.sn[s])?;
    gpu.potrf(ctx.compute, ctx.panel_buf, 0, c, len)
        .map_err(map_device_pivot(first))?;
    gpu.trsm_panel(ctx.compute, ctx.panel_buf, 0, len, c, r)?;
    // Asynchronous panel copy-back on the pair's copy stream.
    let factored = gpu.record_event(ctx.compute);
    gpu.stream_wait_event(ctx.copy, factored);
    gpu.memcpy_d2h(ctx.copy, ctx.panel_buf, 0, &mut data.sn[s])?;

    let mut staged = Vec::new();
    let mut strips = Vec::new();
    if r > 0 {
        match variant {
            PipeVariant::Rl => {
                gpu.syrk(
                    ctx.compute,
                    ctx.panel_buf,
                    c,
                    len,
                    r,
                    c,
                    1.0,
                    0.0,
                    ctx.upd_buf,
                    0,
                    r,
                )?;
                staged = vec![0.0f64; r * r];
            }
            PipeVariant::Rlb => {
                let blocks = &sym.blocks[s];
                let stage_len;
                (strips, stage_len) = strips_of(blocks);
                for st in &strips {
                    launch_strip_kernel(
                        gpu,
                        ctx.compute,
                        ctx.panel_buf,
                        ctx.upd_buf,
                        st,
                        blocks,
                        c,
                        len,
                    )?;
                }
                staged = vec![0.0f64; stage_len];
            }
        }
        let computed = gpu.record_event(ctx.compute);
        gpu.stream_wait_event(ctx.copy, computed);
        gpu.memcpy_d2h(ctx.copy, ctx.upd_buf, 0, &mut staged)?;
    }
    let ready = gpu.record_event(ctx.copy);
    ctx.gate = Some(ready);
    inflight[s] = Some(InFlight {
        staged,
        strips,
        ready,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_rl::factor_rl_gpu;
    use crate::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
    use rlchol_matgen::{laplace2d, laplace3d};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, rlchol_sparse::SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn rl_pipe_bit_identical_across_stream_counts() {
        let a = laplace3d(6, 41);
        let (sym, ap) = setup(&a);
        for threshold in [0usize, 500] {
            let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(threshold)).unwrap();
            for streams in [1usize, 2, 4] {
                let opts = GpuOptions::with_threshold(threshold).with_streams(streams);
                let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
                assert_eq!(run.streams_used, streams);
                assert_eq!(
                    base.factor.sn, run.factor.sn,
                    "thr {threshold} streams {streams}: factor must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn rlb_pipe_bit_identical_to_both_single_stream_versions() {
        let a = laplace2d(14, 42);
        let (sym, ap) = setup(&a);
        let opts1 = GpuOptions::with_threshold(0);
        let v1 = factor_rlb_gpu(&sym, &ap, &opts1, RlbGpuVersion::V1).unwrap();
        let v2 = factor_rlb_gpu(&sym, &ap, &opts1, RlbGpuVersion::V2).unwrap();
        // At full capacity v2 never splits blocks, so all three agree.
        assert_eq!(v1.factor.sn, v2.factor.sn);
        for streams in [1usize, 3] {
            let run = factor_rlb_gpu_pipe(&sym, &ap, &opts1.clone().with_streams(streams)).unwrap();
            assert_eq!(v1.factor.sn, run.factor.sn, "streams {streams}");
        }
    }

    #[test]
    fn least_loaded_assignment_is_bit_identical_and_never_slower_to_issue() {
        // Any assignment policy must produce the single-stream factor
        // (retirement is in order regardless of which pair ran what).
        let a = laplace3d(6, 43);
        let (sym, ap) = setup(&a);
        let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
        for streams in [1usize, 2, 4] {
            let opts = GpuOptions::with_threshold(0)
                .with_streams(streams)
                .with_assign(StreamAssign::LeastLoaded);
            let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
            assert_eq!(run.streams_used, streams);
            assert_eq!(
                base.factor.sn, run.factor.sn,
                "least-loaded streams {streams}: factor must be bit-identical"
            );
        }
    }

    // The 1 -> 2 stream strict-speedup property is covered by the
    // integration test `multi_stream_pipelining_speeds_up_the_simulated
    // _clock` (tests/pipelined_gpu.rs) on an ND-ordered 3-D grid; a
    // natural band order collapses the tree to a path where no engine
    // can overlap anything, so such a check must order first.
}
