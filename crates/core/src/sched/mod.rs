//! Elimination-tree scheduling: an engine-agnostic frontier driver plus
//! the executors built on it.
//!
//! Two supernodes in disjoint subtrees of the supernodal elimination
//! tree touch disjoint storage and can be processed concurrently (the
//! fan-out / right-looking task model — cf. the asynchronous fan-both
//! solver of Jacquelin et al.). What "processed" means is up to the
//! executor; the dependency machinery is not:
//!
//! * [`driver`] — the **frontier driver**: per-supernode dependency
//!   counts derived from the symbolic block/row structure (supernode `p`
//!   may start once every descendant that updates it has applied its
//!   updates), leaf seeding, and fan-out release. It knows nothing about
//!   threads, locks, or devices — executors layer their own queueing and
//!   synchronization over it.
//! * [`cpu`] — the task-parallel CPU executor: a fixed team of scheduler
//!   workers over the persistent [`rlchol_dense::pool`], per-target
//!   locks, composable node-level BLAS striping, and clean error/panic
//!   propagation out of the team.
//! * [`gpu`] — the **pipelined multi-stream GPU executor**: independent
//!   ready supernodes are dispatched onto `RLCHOL_STREAMS` simulated
//!   compute/copy stream pairs (per-pair device buffers, `Event`-gated
//!   buffer reuse, round-robin or least-loaded assignment), while
//!   supernodes retire — host assembly, CPU-path work, frontier
//!   release — under one of two disciplines selected by
//!   `RLCHOL_RETIRE`: **in-order** (ascending supernode order, the
//!   conservative default) or **out-of-order** (a supernode's host
//!   effects apply as soon as its device→host copy lands, with
//!   per-target sequence counters forcing each destination's updates
//!   into ascending-source order and an adaptive lookahead window
//!   pacing issue against retirement — the asynchronous fan-both
//!   discipline). Both keep the factor bit-identical to the
//!   single-stream engines at any stream count; out-of-order stops the
//!   host timeline from serializing on the oldest in-flight supernode.
//!   On staged handles the executor also keeps its device session
//!   resident across same-pattern refactorizations (buffers and
//!   uploaded pattern metadata survive between calls).

pub mod cpu;
pub mod driver;
pub mod gpu;

pub use cpu::{factor_rl_cpu_par, factor_rl_cpu_par_ws, factor_rlb_cpu_par, factor_rlb_cpu_par_ws};
pub use driver::Frontier;
pub use gpu::{
    factor_rl_gpu_pipe, factor_rl_gpu_pipe_ws, factor_rlb_gpu_pipe, factor_rlb_gpu_pipe_ws,
};
