//! The engine-agnostic frontier driver.
//!
//! A supernode is *ready* when every descendant that updates it has
//! finished applying its updates. The driver owns exactly that state —
//! one remaining-updater count per supernode, decremented as updaters
//! complete — and nothing else: no queue discipline, no locking policy,
//! no notion of where work runs. The CPU executor pairs it with a
//! condvar-guarded ready queue drained by a worker team; the GPU
//! executor pairs it with an index-ordered heap drained by a single
//! issue loop that fans device work across streams. Counts are atomic
//! so concurrent executors may release targets from any thread.

use std::sync::atomic::{AtomicUsize, Ordering};

use rlchol_symbolic::SymbolicFactor;

/// Distinct target supernodes of `s`'s updates, in ascending order.
/// Rows of one target are contiguous in the sorted row list, so
/// deduplicating consecutive targets is exact.
pub fn distinct_targets(sym: &SymbolicFactor, s: usize, out: &mut Vec<usize>) {
    out.clear();
    for &row in &sym.rows[s] {
        let p = sym.sn.col_to_sn[row];
        if out.last() != Some(&p) {
            out.push(p);
        }
    }
}

/// Remaining-updater counts over the supernodal elimination structure.
pub struct Frontier {
    /// One count per supernode: distinct update *sources* not yet
    /// completed. Zero means ready.
    deps: Vec<AtomicUsize>,
}

impl Frontier {
    /// Builds the counts from the symbolic structure: one per distinct
    /// `(source, target)` update pair.
    pub fn new(sym: &SymbolicFactor) -> Self {
        let nsup = sym.nsup();
        let mut deps = vec![0usize; nsup];
        let mut targets = Vec::new();
        for s in 0..nsup {
            distinct_targets(sym, s, &mut targets);
            for &p in &targets {
                deps[p] += 1;
            }
        }
        Frontier {
            deps: deps.into_iter().map(AtomicUsize::new).collect(),
        }
    }

    /// Number of supernodes tracked.
    pub fn nsup(&self) -> usize {
        self.deps.len()
    }

    /// The initially ready supernodes (the forest's leaves), ascending.
    pub fn initial_ready(&self) -> Vec<usize> {
        (0..self.deps.len())
            .filter(|&s| self.deps[s].load(Ordering::Relaxed) == 0)
            .collect()
    }

    /// Records that one updater of `target` has completed; returns `true`
    /// exactly once per target — when its last updater releases it.
    pub fn release(&self, target: usize) -> bool {
        self.deps[target].fetch_sub(1, Ordering::AcqRel) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::segments;
    use rlchol_matgen::{grid3d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    #[test]
    fn dep_counts_match_segments() {
        let a = grid3d(6, 5, 4, Stencil::Star7, 1, 9);
        let sym = analyze(&a, &SymbolicOptions::default());
        let mut targets = Vec::new();
        for s in 0..sym.nsup() {
            distinct_targets(&sym, s, &mut targets);
            let segs = segments(&sym, s);
            assert_eq!(targets.len(), segs.len(), "supernode {s}");
            for (t, seg) in targets.iter().zip(&segs) {
                assert_eq!(*t, seg.target);
            }
        }
    }

    #[test]
    fn releases_drain_to_every_supernode_exactly_once() {
        // Simulate retirement in ascending order: every supernode must
        // become ready exactly once, and before its own retirement.
        let a = grid3d(5, 5, 5, Stencil::Star7, 1, 4);
        let sym = analyze(&a, &SymbolicOptions::default());
        let frontier = Frontier::new(&sym);
        let mut became_ready = vec![false; sym.nsup()];
        for s in frontier.initial_ready() {
            became_ready[s] = true;
        }
        let mut targets = Vec::new();
        for s in 0..sym.nsup() {
            assert!(became_ready[s], "supernode {s} retired before ready");
            distinct_targets(&sym, s, &mut targets);
            for &p in &targets {
                if frontier.release(p) {
                    assert!(!became_ready[p], "supernode {p} released twice");
                    became_ready[p] = true;
                }
            }
        }
        assert!(became_ready.iter().all(|&b| b));
    }
}
