//! The task-parallel CPU executor over the frontier driver.
//!
//! * **Ready queue.** Seeded with the forest's leaves from the
//!   [`Frontier`]. A fixed team of scheduler workers (running as jobs on
//!   the persistent [`rlchol_dense::pool`]) pops supernodes, factors the
//!   panel, applies the fan-out updates guarded by a per-supernode lock
//!   on the target's storage, and releases the targets through the
//!   frontier — pushing any that become ready.
//! * **Two-level parallelism.** Inside a task, sufficiently large BLAS
//!   calls use the striped `par_*` kernels, whose stripes land on the
//!   same pool; idle scheduler workers execute pending stripes instead of
//!   sleeping, so tree-level and node-level parallelism compose without
//!   oversubscription (near the root, few large tasks fan their stripes
//!   out across the whole team).
//! * **Error propagation.** A non-positive-definite pivot stops the
//!   scheduler: the failing worker records the error and raises the stop
//!   flag; everyone drains and the first error is returned. No task is
//!   left blocked — waits are bounded and re-check the flag.
//!
//! Floating-point note: updates into a target may apply in any order, so
//! parallel factors differ from serial ones by roundoff (≈1e-15
//! relative); tests compare at 1e-11. (The pipelined GPU executor makes
//! the opposite trade — in-order retirement for bit-exactness; see
//! [`super::gpu`].)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use rlchol_dense::{gemm_nt, par_gemm_nt, par_syrk_ln, pool, syrk_ln};
use rlchol_perfmodel::{Trace, TraceOp};
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::assemble::{scatter_segment, segments};
use crate::engine::{factor_panel, factor_panel_par, CpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;
use crate::rlb::{rlb_run_updates, rlb_target_runs};
use crate::storage::FactorData;

use super::driver::Frontier;

/// Flop threshold below which a task keeps a BLAS call serial instead of
/// striping it across the pool (stripe setup costs ~µs; a call this
/// small finishes faster than the fan-out).
pub(crate) const PAR_FLOPS: f64 = 2.0e6;

/// Which update formulation the scheduler applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// Full update matrix + scatter (RL, §II-A).
    Rl,
    /// Per-block direct updates (RLB, §II-B).
    Rlb,
}

/// Task-parallel RL factorization with `threads` lanes. `threads <= 1`
/// runs the serial engine.
pub fn factor_rl_cpu_par(
    sym: &SymbolicFactor,
    a: &SymCsc,
    threads: usize,
) -> Result<CpuRun, FactorError> {
    factor_rl_cpu_par_ws(sym, a, threads, &mut EngineWorkspace::default())
}

/// [`factor_rl_cpu_par`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rl_cpu_par_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    threads: usize,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    if threads <= 1 || sym.nsup() <= 1 {
        return crate::rl::factor_rl_cpu_ws(sym, a, ws);
    }
    run_scheduler(sym, a, threads, Variant::Rl, ws)
}

/// Task-parallel RLB factorization with `threads` lanes. `threads <= 1`
/// runs the serial engine.
pub fn factor_rlb_cpu_par(
    sym: &SymbolicFactor,
    a: &SymCsc,
    threads: usize,
) -> Result<CpuRun, FactorError> {
    factor_rlb_cpu_par_ws(sym, a, threads, &mut EngineWorkspace::default())
}

/// [`factor_rlb_cpu_par`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rlb_cpu_par_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    threads: usize,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    if threads <= 1 || sym.nsup() <= 1 {
        return crate::rlb::factor_rlb_cpu_ws(sym, a, ws);
    }
    run_scheduler(sym, a, threads, Variant::Rlb, ws)
}

/// Ready queue and termination state, guarded by one mutex.
struct Ctrl {
    ready: std::collections::VecDeque<usize>,
    /// Supernodes fully processed (factored + updates applied).
    done: usize,
    /// Raised on completion or error; workers exit when they see it.
    stop: bool,
}

struct Shared<'a> {
    sym: &'a SymbolicFactor,
    /// Per-supernode storage, each behind its own lock. A supernode is
    /// written by its updaters (serialized by the lock) and then by its
    /// own factor task (exclusive by scheduling: its count is zero and
    /// nothing reads it until it finishes).
    sn: Vec<Mutex<Vec<f64>>>,
    /// Remaining-updater counts (the engine-agnostic frontier driver).
    frontier: Frontier,
    ctrl: Mutex<Ctrl>,
    wake: Condvar,
    /// Tree-level tasks currently factoring (for the lane-split
    /// heuristic).
    active: AtomicUsize,
    threads: usize,
    variant: Variant,
    /// Deadline/cancel control, checked once per popped supernode (the
    /// workers' natural checkpoint granularity).
    ctl: crate::resilience::RunCtl,
    error: Mutex<Option<FactorError>>,
    /// Payload of the first task panic; re-raised by the driver so a
    /// panicking parallel factorization behaves like the serial one.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    trace: Mutex<Trace>,
}

impl Shared<'_> {
    /// Marks one supernode fully processed; raises stop on the last.
    fn complete_one(&self) {
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.done += 1;
        if ctrl.done == self.sym.nsup() {
            ctrl.stop = true;
            self.wake.notify_all();
        }
    }

    /// Records `err` (first wins) and stops the scheduler.
    fn fail(&self, err: FactorError) {
        let mut e = self.error.lock().unwrap();
        if e.is_none() {
            *e = Some(err);
        }
        drop(e);
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.stop = true;
        self.wake.notify_all();
    }

    /// Records a task panic (first wins) and stops the scheduler.
    fn fail_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut p = self.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(payload);
        }
        drop(p);
        let mut ctrl = self.ctrl.lock().unwrap();
        ctrl.stop = true;
        self.wake.notify_all();
    }

    /// Releases `p` through the frontier; queues it when it became ready.
    fn release_target(&self, p: usize) {
        if self.frontier.release(p) {
            let mut ctrl = self.ctrl.lock().unwrap();
            ctrl.ready.push_back(p);
            drop(ctrl);
            self.wake.notify_one();
        }
    }

    /// Inner BLAS lanes for the current task: split the team across the
    /// tasks currently running so stripes never oversubscribe.
    fn inner_threads(&self) -> usize {
        let active = self.active.load(Ordering::Relaxed).max(1);
        (self.threads / active).max(1)
    }
}

fn run_scheduler(
    sym: &SymbolicFactor,
    a: &SymCsc,
    threads: usize,
    variant: Variant,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    let t0 = Instant::now();
    let nsup = sym.nsup();
    // The recycled per-supernode buffers move into the mutexes and back
    // out at the end — reused, never reallocated.
    let data = ws.take_factor(sym, a);

    let frontier = Frontier::new(sym);
    let mut ready: std::collections::VecDeque<usize> = frontier.initial_ready().into();
    debug_assert!(!ready.is_empty(), "a forest always has leaves");
    // Factor large leaves first: they unlock deeper chains sooner and
    // keep the team busy while small leaves fill the gaps.
    ready
        .make_contiguous()
        .sort_by_key(|&s| std::cmp::Reverse(sym.sn_size(s)));

    let shared = Shared {
        sym,
        sn: data.sn.into_iter().map(Mutex::new).collect(),
        frontier,
        ctrl: Mutex::new(Ctrl {
            ready,
            done: 0,
            stop: false,
        }),
        wake: Condvar::new(),
        active: AtomicUsize::new(0),
        threads,
        variant,
        ctl: ws.ctl.clone(),
        error: Mutex::new(None),
        panic: Mutex::new(None),
        trace: Mutex::new(Trace::new()),
    };

    // One scheduler worker per lane, on dedicated scoped threads (one
    // spawn per *factorization*, not per BLAS call — the pool still
    // carries all the stripe work). Scheduler workers must NOT run as
    // pool jobs: a task that waits for its own stripes while holding a
    // target lock would then execute a queued scheduler worker nested on
    // its stack, which can try to take the same lock — a same-thread
    // deadlock. Keeping the pool's job set down to non-blocking stripes
    // makes every nested "help while waiting" execution safe.
    let team = threads.min(nsup).max(1);
    std::thread::scope(|scope| {
        for _ in 1..team {
            scope.spawn(|| worker(&shared));
        }
        worker(&shared);
    });

    if let Some(payload) = shared.panic.lock().unwrap().take() {
        // A task panicked (BLAS stripe, debug assertion, ...): re-raise
        // on the driver, exactly as the serial engines would.
        std::panic::resume_unwind(payload);
    }
    if let Some(err) = shared.error.lock().unwrap().take() {
        return Err(err);
    }
    debug_assert_eq!(shared.ctrl.lock().unwrap().done, nsup);
    let factor = FactorData {
        sn: shared
            .sn
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    };
    Ok(CpuRun {
        factor,
        trace: shared.trace.into_inner().unwrap(),
        wall: t0.elapsed(),
    })
}

/// Scheduler worker loop: pop ready supernodes and process them; while
/// idle, execute pending pool jobs (BLAS stripes of busy teammates).
fn worker(shared: &Shared<'_>) {
    loop {
        let s = {
            let mut ctrl = shared.ctrl.lock().unwrap();
            // Escalating idle wait: stay responsive right after running
            // dry, but back off toward 2 ms on long-idle lanes (e.g. a
            // path-shaped tree where one lane works for all) so idle
            // polling stops contending the queue mutexes.
            let mut idle_wait = Duration::from_micros(100);
            loop {
                if ctrl.stop {
                    return;
                }
                if let Some(s) = ctrl.ready.pop_front() {
                    break s;
                }
                drop(ctrl);
                if !pool::global().try_run_one() {
                    // Nothing to help with: sleep briefly, re-check. The
                    // bounded wait guarantees stop/error always terminate
                    // the loop.
                    let guard = shared.ctrl.lock().unwrap();
                    let (guard, _) = shared.wake.wait_timeout(guard, idle_wait).unwrap();
                    ctrl = guard;
                    idle_wait = (idle_wait * 2).min(Duration::from_millis(2));
                } else {
                    ctrl = shared.ctrl.lock().unwrap();
                    idle_wait = Duration::from_micros(100);
                }
            }
        };
        // Deadline/cancel checkpoint before committing to the task: a
        // tripped control stops the whole scheduler (first error wins)
        // instead of letting the sweep run to completion.
        if let Err(err) = shared.ctl.check() {
            shared.fail(err);
            return;
        }
        shared.active.fetch_add(1, Ordering::Relaxed);
        // A panicking task must still stop the scheduler: letting it
        // unwind freely would leave `stop` unset and every other worker
        // (and the scope join) waiting forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_supernode(shared, s)
        }));
        shared.active.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(Ok(())) => shared.complete_one(),
            Ok(Err(err)) => {
                shared.fail(err);
                return;
            }
            Err(payload) => {
                shared.fail_panic(payload);
                return;
            }
        }
    }
}

std::thread_local! {
    /// Per-thread scratch reused across tasks: the `l11` triangle copy
    /// for the panel TRSM and (RL only) the dense update matrix.
    static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Factors supernode `s` and applies its fan-out updates.
fn process_supernode(shared: &Shared<'_>, s: usize) -> Result<(), FactorError> {
    let sym = shared.sym;
    let c = sym.sn_ncols(s);
    let r = sym.sn_nrows_below(s);
    let len = sym.sn_len(s);
    let first = sym.sn.first_col(s);
    let mut ops: Vec<TraceOp> = Vec::new();

    // The factor task holds `s`'s lock for its whole duration: all
    // updaters have finished (deps reached zero) and no other task reads
    // `s` before it completes, so there is no contention — the lock is
    // the happens-before edge collecting the updaters' writes.
    let mut src = shared.sn[s].lock().unwrap();
    SCRATCH.with(|cell| -> Result<(), FactorError> {
        let (l11, upd) = &mut *cell.borrow_mut();
        let inner = shared.inner_threads();
        // Panel: POTRF + TRSM (striped when the panel is large and lanes
        // are available).
        let panel_result = if inner > 1 && (r * c * c) as f64 >= PAR_FLOPS {
            factor_panel_par(&mut src, len, c, r, l11, inner)
        } else {
            factor_panel(&mut src, len, c, r, l11)
        };
        panel_result.map_err(|pivot| FactorError::NotPositiveDefinite {
            column: first + pivot,
        })?;
        ops.push(TraceOp::Potrf { n: c });
        if r == 0 {
            return Ok(());
        }
        ops.push(TraceOp::Trsm { m: r, n: c });
        match shared.variant {
            Variant::Rl => apply_updates_rl(shared, s, &src, r, c, len, upd, &mut ops),
            Variant::Rlb => apply_updates_rlb(shared, s, &src, c, len, &mut ops),
        }
        Ok(())
    })?;
    drop(src);
    shared.trace.lock().unwrap().ops.append(&mut ops);
    Ok(())
}

/// RL fan-out: one coarse SYRK into the per-thread update workspace, then
/// scatter each target segment under that target's lock.
#[allow(clippy::too_many_arguments)]
fn apply_updates_rl(
    shared: &Shared<'_>,
    s: usize,
    src: &[f64],
    r: usize,
    c: usize,
    len: usize,
    upd: &mut Vec<f64>,
    ops: &mut Vec<TraceOp>,
) {
    let sym = shared.sym;
    if upd.len() < r * r {
        upd.resize(r * r, 0.0);
    }
    let inner = shared.inner_threads();
    if inner > 1 && (r * r * c) as f64 >= PAR_FLOPS {
        par_syrk_ln(inner, r, c, 1.0, &src[c..], len, 0.0, &mut upd[..r * r], r);
    } else {
        syrk_ln(r, c, 1.0, &src[c..], len, 0.0, &mut upd[..r * r], r);
    }
    ops.push(TraceOp::Syrk { n: r, k: c });
    let rows = &sym.rows[s];
    let mut entries = 0usize;
    for seg in segments(sym, s) {
        let mut target = shared.sn[seg.target].lock().unwrap();
        entries += scatter_segment(sym, &mut target, seg, rows, &upd[..r * r], r);
        drop(target);
        shared.release_target(seg.target);
    }
    ops.push(TraceOp::Assemble { entries });
}

/// RLB fan-out: per-block SYRK/GEMM applied directly into each target's
/// storage under its lock, enumerated by the shared sweep
/// ([`rlb_target_runs`] / [`rlb_run_updates`]); all blocks of one target
/// run share one lock acquisition, and the target is released once the
/// run completes.
fn apply_updates_rlb(
    shared: &Shared<'_>,
    s: usize,
    src: &[f64],
    c: usize,
    len: usize,
    ops: &mut Vec<TraceOp>,
) {
    let sym = shared.sym;
    for run in rlb_target_runs(sym, s) {
        let mut parr = shared.sn[run.target].lock().unwrap();
        rlb_run_updates(sym, s, c, &run, |u| {
            let inner = shared.inner_threads();
            if u.diagonal {
                // Diagonal part L[B, B] via DSYRK.
                let cblock = &mut parr[u.dst_off..];
                if inner > 1 && (u.n * u.n * c) as f64 >= PAR_FLOPS {
                    par_syrk_ln(
                        inner,
                        u.n,
                        c,
                        -1.0,
                        &src[u.a_off..],
                        len,
                        1.0,
                        cblock,
                        run.p_len,
                    );
                } else {
                    syrk_ln(u.n, c, -1.0, &src[u.a_off..], len, 1.0, cblock, run.p_len);
                }
                ops.push(TraceOp::Syrk { n: u.n, k: c });
            } else {
                // Lower part L[B′, B] via DGEMM.
                let cblock = &mut parr[u.dst_off..];
                if inner > 1 && (2 * u.m * u.n * c) as f64 >= PAR_FLOPS {
                    par_gemm_nt(
                        inner,
                        u.m,
                        u.n,
                        c,
                        -1.0,
                        &src[u.a_off..],
                        len,
                        &src[u.b_off..],
                        len,
                        1.0,
                        cblock,
                        run.p_len,
                    );
                } else {
                    gemm_nt(
                        u.m,
                        u.n,
                        c,
                        -1.0,
                        &src[u.a_off..],
                        len,
                        &src[u.b_off..],
                        len,
                        1.0,
                        cblock,
                        run.p_len,
                    );
                }
                ops.push(TraceOp::Gemm {
                    m: u.m,
                    n: u.n,
                    k: c,
                });
            }
        });
        drop(parr);
        shared.release_target(run.target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use crate::rlb::factor_rlb_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn prepared(a: &SymCsc) -> (SymbolicFactor, SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn parallel_rlb_matches_serial_2d() {
        let a = laplace2d(24, 5);
        let (sym, ap) = prepared(&a);
        let serial = factor_rlb_cpu(&sym, &ap).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = factor_rlb_cpu_par(&sym, &ap, threads).unwrap();
            let d = serial.factor.max_rel_diff(&par.factor);
            assert!(d < 1e-11, "threads={threads}: diff {d}");
        }
    }

    #[test]
    fn parallel_rl_matches_serial_3d() {
        let a = grid3d(7, 7, 7, Stencil::Star7, 1, 3);
        let (sym, ap) = prepared(&a);
        let serial = factor_rl_cpu(&sym, &ap).unwrap();
        for threads in [2, 4, 8] {
            let par = factor_rl_cpu_par(&sym, &ap, threads).unwrap();
            let d = serial.factor.max_rel_diff(&par.factor);
            assert!(d < 1e-11, "threads={threads}: diff {d}");
        }
    }

    #[test]
    fn more_lanes_than_pool_threads_never_deadlocks() {
        // Regression: with a scheduler team larger than the pool's lane
        // count AND supernodes big enough to engage the striped kernels,
        // scheduler workers used to be pool jobs — a task waiting on its
        // stripes while holding a target lock could execute a queued
        // scheduler worker nested on its own stack and self-deadlock.
        // The grid is sized so the root separator's panel exceeds
        // PAR_FLOPS; the test machine's pool typically has far fewer
        // lanes than the 8 requested here.
        let a = grid3d(14, 14, 14, Stencil::Star7, 1, 7);
        let (sym, ap) = prepared(&a);
        assert!(
            (0..sym.nsup()).any(|s| {
                let c = sym.sn_ncols(s);
                let r = sym.sn_nrows_below(s);
                (r * c * c) as f64 >= PAR_FLOPS
            }),
            "test matrix must engage the striped kernels"
        );
        let serial = factor_rlb_cpu(&sym, &ap).unwrap();
        let par = factor_rlb_cpu_par(&sym, &ap, 8).unwrap();
        let d = serial.factor.max_rel_diff(&par.factor);
        assert!(d < 1e-11, "diff {d}");
    }

    #[test]
    fn trace_flops_match_serial() {
        // The parallel trace holds the same multiset of BLAS calls (order
        // aside) as the serial engine's.
        let a = laplace2d(16, 3);
        let (sym, ap) = prepared(&a);
        let serial = factor_rlb_cpu(&sym, &ap).unwrap();
        let par = factor_rlb_cpu_par(&sym, &ap, 4).unwrap();
        assert_eq!(serial.trace.blas_calls(), par.trace.blas_calls());
    }
}
