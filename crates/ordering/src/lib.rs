//! # rlchol-ordering — fill-reducing orderings
//!
//! The paper orders matrices with METIS nested dissection before symbolic
//! analysis (§IV-A). This crate provides the from-scratch substitute:
//!
//! * [`nested_dissection`] — recursive bisection with BFS level-set
//!   separators grown from pseudo-peripheral vertices, separator cleanup
//!   passes, and minimum-degree leaf ordering;
//! * [`min_degree`] — exact external-degree minimum degree on a quotient
//!   graph (element absorption keeps lists compact);
//! * [`rcm`] — reverse Cuthill–McKee, a bandwidth-oriented baseline;
//! * [`order`] — one-call dispatcher over [`OrderingMethod`].
//!
//! All functions return a [`Permutation`] in the convention
//! `old_of[new] = old`: position `k` of the returned ordering names the
//! vertex eliminated `k`-th.

pub mod mindeg;
pub mod nd;
pub mod rcm;

pub use mindeg::min_degree;
pub use nd::{nested_dissection, NdOptions};
pub use rcm::{pseudo_peripheral, rcm};

use rlchol_sparse::{Graph, Permutation, SymCsc};

/// Fill-reducing ordering algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMethod {
    /// Keep the input ordering.
    Natural,
    /// Exact minimum degree.
    MinDegree,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Nested dissection with default options (the paper's choice).
    NestedDissection,
}

/// Orders the adjacency graph of `a` with the chosen method.
pub fn order(a: &SymCsc, method: OrderingMethod) -> Permutation {
    let g = a.to_graph();
    order_graph(&g, method)
}

/// Orders an explicit graph with the chosen method.
pub fn order_graph(g: &Graph, method: OrderingMethod) -> Permutation {
    match method {
        OrderingMethod::Natural => Permutation::identity(g.n()),
        OrderingMethod::MinDegree => min_degree(g),
        OrderingMethod::Rcm => rcm(g),
        OrderingMethod::NestedDissection => nested_dissection(g, &NdOptions::default()),
    }
}
