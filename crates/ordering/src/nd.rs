//! Nested dissection ordering.
//!
//! Classic recursive bisection in the style of SPARSPAK / METIS:
//!
//! 1. split the (sub)graph into connected components;
//! 2. for each component above the leaf threshold, grow BFS level sets
//!    from a pseudo-peripheral vertex and cut at the median level;
//! 3. take the cut level as a vertex separator, then *shrink* it — a
//!    separator vertex with neighbors on only one side migrates to that
//!    side (repeated for a few passes);
//! 4. recurse on both halves, then emit the separator last;
//! 5. order leaf components with exact minimum degree.
//!
//! On the regular 2-D/3-D meshes that dominate the paper's test set this
//! produces the familiar `O(n log n)` fill / `O(n^{3/2})`–`O(n²)` flop
//! profiles that METIS achieves, which is all the downstream experiments
//! need (the ordering only shapes the supernode size distribution).

use crate::mindeg::min_degree;
use crate::rcm::pseudo_peripheral;
use rlchol_sparse::{Graph, Permutation};

/// Options for [`nested_dissection`].
#[derive(Debug, Clone, Copy)]
pub struct NdOptions {
    /// Subgraphs at or below this size are ordered with minimum degree.
    pub leaf_size: usize,
    /// Separator-shrinking passes after the level-set cut.
    pub shrink_passes: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions {
            leaf_size: 96,
            shrink_passes: 4,
        }
    }
}

/// Computes a nested-dissection ordering of `g`.
pub fn nested_dissection(g: &Graph, opts: &NdOptions) -> Permutation {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let all: Vec<usize> = (0..n).collect();
    dissect(g, &all, opts, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_old_of(order).expect("nested dissection visits each vertex once")
}

/// Recursively orders the induced subgraph on `vertices` (global ids),
/// appending eliminated vertices to `out`.
fn dissect(g: &Graph, vertices: &[usize], opts: &NdOptions, out: &mut Vec<usize>) {
    if vertices.is_empty() {
        return;
    }
    let (sub, globals) = g.induced_subgraph(vertices);
    for comp in sub.connected_components() {
        if comp.len() <= opts.leaf_size {
            // Leaf: minimum degree on the component.
            let (leaf, leaf_globals) = sub.induced_subgraph(&comp);
            let p = min_degree(&leaf);
            out.extend(p.old_of_slice().iter().map(|&l| globals[leaf_globals[l]]));
            continue;
        }
        let (comp_graph, comp_globals) = sub.induced_subgraph(&comp);
        match bisect(&comp_graph, opts) {
            Some((a, b, sep)) => {
                let to_global = |locals: &[usize]| -> Vec<usize> {
                    locals.iter().map(|&l| globals[comp_globals[l]]).collect()
                };
                dissect(g, &to_global(&a), opts, out);
                dissect(g, &to_global(&b), opts, out);
                // Separator vertices are eliminated last; order them by
                // minimum degree of their induced subgraph for a better
                // dense tail.
                let sep_global = to_global(&sep);
                let (sg, sg_globals) = g.induced_subgraph(&sep_global);
                let p = min_degree(&sg);
                out.extend(p.old_of_slice().iter().map(|&l| sg_globals[l]));
            }
            None => {
                // Bisection failed (e.g. a clique): fall back to MD.
                let p = min_degree(&comp_graph);
                out.extend(p.old_of_slice().iter().map(|&l| globals[comp_globals[l]]));
            }
        }
    }
}

/// Splits a connected graph into `(A, B, S)` with `S` a vertex separator.
/// Returns `None` when no useful split exists.
fn bisect(g: &Graph, opts: &NdOptions) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let n = g.n();
    let mask = vec![true; n];
    let root = pseudo_peripheral(g, 0, &mask);
    let (levels, level_of) = g.bfs_levels(root, &mask);
    if levels.len() < 3 {
        return None; // graph of diameter < 2: no interior level to cut
    }
    // Cut at the level where the cumulative size crosses half.
    let mut cum = 0usize;
    let mut cut = 1usize;
    for (l, lv) in levels.iter().enumerate() {
        cum += lv.len();
        if cum * 2 >= n {
            cut = l.clamp(1, levels.len() - 2);
            break;
        }
    }

    // side[v]: 0 = A (levels < cut), 1 = B (levels > cut), 2 = separator.
    let mut side = vec![0u8; n];
    for v in 0..n {
        side[v] = match level_of[v].cmp(&cut) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 2,
            std::cmp::Ordering::Greater => 1,
        };
    }

    // Shrink: a separator vertex with all non-separator neighbors on one
    // side joins that side. Multiple passes let the separator thin out.
    for _ in 0..opts.shrink_passes {
        let mut changed = false;
        for v in 0..n {
            if side[v] != 2 {
                continue;
            }
            let mut has_a = false;
            let mut has_b = false;
            for &u in g.neighbors(v) {
                match side[u] {
                    0 => has_a = true,
                    1 => has_b = true,
                    _ => {}
                }
            }
            if has_a != has_b {
                side[v] = if has_a { 0 } else { 1 };
                changed = true;
            } else if !has_a && !has_b {
                // Separator-only neighborhood: join the smaller side.
                side[v] = 0;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Re-legalize: after migration some A-B edges may appear; push
        // offending B endpoints back into the separator.
        for v in 0..n {
            if side[v] == 0 {
                for &u in g.neighbors(v) {
                    if side[u] == 1 {
                        side[u] = 2;
                    }
                }
            }
        }
    }

    let a: Vec<usize> = (0..n).filter(|&v| side[v] == 0).collect();
    let b: Vec<usize> = (0..n).filter(|&v| side[v] == 1).collect();
    let s: Vec<usize> = (0..n).filter(|&v| side[v] == 2).collect();
    // Sanity: S must actually separate A from B.
    debug_assert!(a
        .iter()
        .all(|&v| g.neighbors(v).iter().all(|&u| side[u] != 1)));
    if a.is_empty() || b.is_empty() || s.len() >= n / 2 {
        return None;
    }
    Some((a, b, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2d(k: usize) -> Graph {
        let idx = |x: usize, y: usize| y * k + x;
        let mut edges = Vec::new();
        for y in 0..k {
            for x in 0..k {
                if x + 1 < k {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < k {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        Graph::from_edges(k * k, &edges)
    }

    #[test]
    fn orders_every_vertex_once() {
        let g = grid2d(12);
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 144);
    }

    #[test]
    fn bisect_produces_valid_separator() {
        let g = grid2d(10);
        let (a, b, s) = bisect(&g, &NdOptions::default()).expect("grid splits");
        assert_eq!(a.len() + b.len() + s.len(), 100);
        assert!(!a.is_empty() && !b.is_empty());
        // No direct A-B edge.
        let mut side = [2u8; 100];
        for &v in &a {
            side[v] = 0;
        }
        for &v in &b {
            side[v] = 1;
        }
        for &v in &a {
            for &u in g.neighbors(v) {
                assert_ne!(side[u], 1, "edge {v}-{u} crosses the separator");
            }
        }
        // Grid separator should be O(k): allow some slack.
        assert!(s.len() <= 30, "separator too large: {}", s.len());
    }

    #[test]
    fn small_graphs_fall_back_to_min_degree() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn cliques_do_not_recurse_forever() {
        let mut edges = Vec::new();
        let k = 130; // above leaf_size, diameter 1 → bisect returns None
        for i in 0..k {
            for j in i + 1..k {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(k, &edges);
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), k);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(9);
        let p1 = nested_dissection(&g, &NdOptions::default());
        let p2 = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn disconnected_graphs_cover_all_components() {
        let mut edges = Vec::new();
        let idx = |x: usize, y: usize, off: usize| off + y * 6 + x;
        for off in [0usize, 36] {
            for y in 0..6 {
                for x in 0..6 {
                    if x + 1 < 6 {
                        edges.push((idx(x, y, off), idx(x + 1, y, off)));
                    }
                    if y + 1 < 6 {
                        edges.push((idx(x, y, off), idx(x, y + 1, off)));
                    }
                }
            }
        }
        let g = Graph::from_edges(72, &edges);
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 72);
    }
}
