//! Reverse Cuthill–McKee ordering and pseudo-peripheral vertex search.

use rlchol_sparse::{Graph, Permutation};

/// Finds a pseudo-peripheral vertex of the component containing `start`,
/// restricted to vertices where `mask` is true (George–Liu iteration:
/// repeat BFS from the lowest-degree vertex of the deepest level until the
/// eccentricity stops increasing).
pub fn pseudo_peripheral(g: &Graph, start: usize, mask: &[bool]) -> usize {
    let mut root = start;
    let (mut levels, _) = g.bfs_levels(root, mask);
    let mut depth = levels.len();
    loop {
        let last = levels.last().expect("component is nonempty");
        let candidate = *last
            .iter()
            .min_by_key(|&&v| (g.degree(v), v))
            .expect("last level nonempty");
        let (lv, _) = g.bfs_levels(candidate, mask);
        if lv.len() > depth {
            depth = lv.len();
            root = candidate;
            levels = lv;
        } else {
            let _ = root;
            return candidate;
        }
    }
}

/// Computes the reverse Cuthill–McKee ordering of `g`.
///
/// Each connected component is ordered by a BFS from a pseudo-peripheral
/// vertex, visiting neighbors in increasing-degree order; the final
/// ordering is reversed (which is what reduces the profile for
/// factorization).
pub fn rcm(g: &Graph) -> Permutation {
    let n = g.n();
    let mask = vec![true; n];
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let root = pseudo_peripheral(g, s, &mask);
        // BFS with degree-sorted neighbor expansion.
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nb: Vec<usize> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            nb.sort_by_key(|&u| (g.degree(u), u));
            for u in nb {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_old_of(order).expect("RCM visits each vertex once")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_endpoints_are_peripheral() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mask = vec![true; 5];
        let p = pseudo_peripheral(&g, 2, &mask);
        assert!(p == 0 || p == 4);
    }

    #[test]
    fn rcm_on_path_is_monotone() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = rcm(&g);
        // A path ordered by RCM is the path order (possibly flipped):
        // consecutive positions are graph neighbors.
        for k in 0..4 {
            let (a, b) = (p.old_of(k), p.old_of(k + 1));
            assert!(g.has_edge(a, b), "positions {k},{} not adjacent", k + 1);
        }
    }

    #[test]
    fn rcm_covers_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (3, 4), (4, 5)]);
        let p = rcm(&g);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_grid() {
        // 4x4 grid, natural ordering bandwidth = 4; RCM keeps it small
        // (level sets of width <= 4). Check max |new(u) - new(v)| over
        // edges is at most the natural bandwidth.
        let mut edges = Vec::new();
        let idx = |x: usize, y: usize| y * 4 + x;
        for y in 0..4 {
            for x in 0..4 {
                if x + 1 < 4 {
                    edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < 4 {
                    edges.push((idx(x, y), idx(x, y + 1)));
                }
            }
        }
        let g = Graph::from_edges(16, &edges);
        let p = rcm(&g);
        let bw = edges
            .iter()
            .map(|&(u, v)| p.new_of(u).abs_diff(p.new_of(v)))
            .max()
            .unwrap();
        assert!(bw <= 5, "rcm bandwidth {bw} too large");
    }
}
