//! Exact external-degree minimum degree on a quotient graph.
//!
//! The quotient-graph representation (George & Liu) keeps, per live
//! variable, a list of remaining *variable* neighbors and a list of
//! *elements* (cliques created by past eliminations). Eliminating a pivot
//! forms a new element from its reachable set, absorbs the pivot's old
//! elements, and prunes variable lists — keeping memory linear in the
//! original edge count.
//!
//! Degrees are exact (recomputed by a marked scan of each affected
//! variable's reachable set), which is affordable here because nested
//! dissection only calls minimum degree on small leaf subgraphs; it is
//! also available as a stand-alone ordering for modest problems.

use rlchol_sparse::{Graph, Permutation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes an exact minimum-degree ordering of `g`.
///
/// Ties break toward the smallest vertex index, making the ordering
/// deterministic.
pub fn min_degree(g: &Graph) -> Permutation {
    let n = g.n();
    // Variable-variable adjacency (pruned as elements absorb coverage).
    let mut adj: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    // Elements are identified by their pivot vertex.
    let mut elem_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut stamp = vec![0u64; n];
    let mut heap: BinaryHeap<Reverse<(usize, usize, u64)>> = BinaryHeap::new();
    for v in 0..n {
        heap.push(Reverse((adj[v].len(), v, 0)));
    }

    // Shared marker with a monotone tag so each scan gets a fresh epoch.
    let mut mark = vec![0u64; n];
    let mut tag = 0u64;
    let mut order = Vec::with_capacity(n);

    // Reachable set of `v`: live variable neighbors plus the live
    // variables of adjacent elements, excluding `v`.
    fn reach(
        v: usize,
        adj: &[Vec<usize>],
        elem_vars: &[Vec<usize>],
        var_elems: &[Vec<usize>],
        eliminated: &[bool],
        mark: &mut [u64],
        tag: &mut u64,
    ) -> Vec<usize> {
        *tag += 1;
        let t = *tag;
        let mut out = Vec::new();
        mark[v] = t;
        for &u in &adj[v] {
            if !eliminated[u] && mark[u] != t {
                mark[u] = t;
                out.push(u);
            }
        }
        for &e in &var_elems[v] {
            for &u in &elem_vars[e] {
                if !eliminated[u] && u != v && mark[u] != t {
                    mark[u] = t;
                    out.push(u);
                }
            }
        }
        out
    }

    while let Some(Reverse((deg, p, s))) = heap.pop() {
        if eliminated[p] || stamp[p] != s {
            continue;
        }
        let _ = deg;
        eliminated[p] = true;
        order.push(p);

        // Form the new element: the pivot's reachable set.
        let lp = reach(
            p,
            &adj,
            &elem_vars,
            &var_elems,
            &eliminated,
            &mut mark,
            &mut tag,
        );
        let absorbed: Vec<usize> = var_elems[p].clone();
        elem_vars[p] = lp.clone();
        // Free absorbed element lists.
        for &e in &absorbed {
            if e != p {
                elem_vars[e] = Vec::new();
            }
        }

        for &v in &lp {
            // Prune v's variable list: drop the pivot, eliminated vars and
            // anything now covered by the new element.
            tag += 1;
            let t = tag;
            for &u in &lp {
                mark[u] = t; // tag members of the new element
            }
            adj[v].retain(|&u| !eliminated[u] && mark[u] != t);
            // Replace absorbed elements with the new one.
            var_elems[v].retain(|e| !absorbed.contains(e));
            var_elems[v].push(p);
            // Exact new degree.
            let d = reach(
                v,
                &adj,
                &elem_vars,
                &var_elems,
                &eliminated,
                &mut mark,
                &mut tag,
            )
            .len();
            stamp[v] += 1;
            heap.push(Reverse((d, v, stamp[v])));
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_old_of(order).expect("minimum degree visits each vertex once")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_every_vertex_once() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let p = min_degree(&g);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn star_center_waits_for_low_degree() {
        // Star: center 0 has degree 4, leaves degree 1. The center cannot
        // be eliminated until at least three leaves are gone (its degree
        // reaches 1 only then — after which ties with the last leaf are
        // broken arbitrarily).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = min_degree(&g);
        assert!(p.new_of(0) >= 3, "center eliminated at {}", p.new_of(0));
    }

    #[test]
    fn path_graph_avoids_middle_first() {
        // On a path, MD takes endpoints (degree 1) before interior nodes,
        // producing zero fill.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = min_degree(&g);
        let first = p.old_of(0);
        assert!(first == 0 || first == 4);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let p = min_degree(&g);
        assert_eq!(p.len(), 4);
        // Isolated vertices (degree 0) come first.
        assert!(p.new_of(2) < 2 && p.new_of(3) < 2);
    }

    #[test]
    fn deterministic() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
        let p1 = min_degree(&g);
        let p2 = min_degree(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(min_degree(&g).len(), 0);
        let g1 = Graph::from_edges(1, &[]);
        assert_eq!(min_degree(&g1).len(), 1);
    }
}
