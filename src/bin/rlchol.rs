//! `rlchol` — command-line driver for the factorization pipeline.
//!
//! ```text
//! rlchol analyze <matrix.mtx> [--ordering nd|md|rcm|natural] [--analyze-threads N] [--json]
//! rlchol factor  <matrix.mtx> [--method <engine>] [--ordering ...] [--json]
//! rlchol solve   <matrix.mtx> [--method ...] [--json]  # b = A·1, reports errors
//! rlchol spy     <matrix.mtx> [--size N]       # ASCII sparsity plot
//! rlchol serve   <addr>       [--method ...]   # solver-as-a-service daemon
//! ```
//!
//! `--method` accepts every registered engine; the list in `--help`
//! output is generated from [`Method::ALL`], so a newly registered
//! engine shows up here with no CLI change. `--json` switches `analyze`,
//! `factor` and `solve` to a single machine-readable JSON report on
//! stdout (same schema as the service protocol's response frames).
//! `analyze` prints the per-stage wall breakdown (etree / colcount /
//! merge / relind / solve-plan / value-map); `--analyze-threads` forces
//! the symbolic pipeline's lane count (the result is bit-identical at
//! any value — only the wall changes).
//!
//! Matrices are Matrix Market files (`coordinate real|pattern`,
//! `symmetric` or `general` holding a symmetric matrix). `serve` takes
//! a listen address (e.g. `127.0.0.1:7211`) instead of a matrix and
//! serves the framed request protocol of `rlchol::service` until a
//! client sends the shutdown op.

use std::time::Duration;

use rlchol::core::engine::{GpuOptions, Method, RetireMode};
use rlchol::core::json::{factor_info_json, solve_info_json, JsonObj};
use rlchol::perfmodel::MachineModel;
use rlchol::report::spy_lower;
use rlchol::sparse::read_matrix_market;
use rlchol::{
    CholeskySolver, Deadline, FallbackChain, FaultPlan, OrderingMethod, SolveWorkspace,
    SolverOptions, SymCsc,
};

/// `--method` choices, generated from the engine registry.
fn method_names() -> String {
    Method::ALL
        .iter()
        .map(|m| m.cli_name())
        .collect::<Vec<_>>()
        .join("|")
}

fn usage() -> ! {
    eprintln!(
        "usage: rlchol <analyze|factor|solve|spy> <matrix.mtx> \
         [--method {}] \
         [--ordering nd|md|rcm|natural] [--solve-threads N] \
         [--factor-lanes N] [--analyze-threads N] [--size N] [--gpu-threshold N] \
         [--retire inorder|ooo] [--lookahead N] \
         [--faults SPEC[,SPEC...]] [--fallback auto|m1>m2>...] \
         [--deadline-ms N] [--json]\n\
         \x20      rlchol serve <addr> [solver flags as above]",
        method_names()
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    path: String,
    method: Method,
    ordering: OrderingMethod,
    size: usize,
    solve_threads: usize,
    factor_lanes: usize,
    analyze_threads: usize,
    gpu_threshold: Option<usize>,
    retire: Option<RetireMode>,
    lookahead: Option<usize>,
    faults: Option<FaultPlan>,
    fallback: Option<FallbackChain>,
    deadline_ms: Option<u64>,
    json: bool,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let cmd = it.next().unwrap_or_else(|| usage());
    let path = it.next().unwrap_or_else(|| usage());
    let mut method = Method::RlCpu;
    let mut ordering = OrderingMethod::NestedDissection;
    let mut size = 40usize;
    let mut solve_threads = 0usize;
    let mut factor_lanes = 0usize;
    let mut analyze_threads = 0usize;
    let mut gpu_threshold = None;
    let mut retire = None;
    let mut lookahead = None;
    let mut faults = None;
    let mut fallback = None;
    let mut deadline_ms = None;
    let mut json = false;
    while let Some(flag) = it.next() {
        // Boolean flags take no value.
        if flag == "--json" {
            json = true;
            continue;
        }
        let value = it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--method" => {
                method = value.parse().unwrap_or_else(|e: String| {
                    eprintln!("rlchol: {e}");
                    usage()
                })
            }
            "--ordering" => {
                ordering = match value.as_str() {
                    "nd" => OrderingMethod::NestedDissection,
                    "md" => OrderingMethod::MinDegree,
                    "rcm" => OrderingMethod::Rcm,
                    "natural" => OrderingMethod::Natural,
                    _ => usage(),
                }
            }
            "--size" => size = value.parse().unwrap_or_else(|_| usage()),
            "--solve-threads" => solve_threads = value.parse().unwrap_or_else(|_| usage()),
            "--factor-lanes" => factor_lanes = value.parse().unwrap_or_else(|_| usage()),
            "--analyze-threads" => analyze_threads = value.parse().unwrap_or_else(|_| usage()),
            // Supernode-size offload cutoff; 0 sends everything to the
            // (simulated) device — handy with --faults.
            "--gpu-threshold" => gpu_threshold = Some(value.parse().unwrap_or_else(|_| usage())),
            // How the pipelined engines retire device results: strict
            // ascending order, or as copies land (out-of-order).
            "--retire" => {
                retire = Some(match value.as_str() {
                    "inorder" => RetireMode::InOrder,
                    "ooo" => RetireMode::Ooo,
                    _ => usage(),
                })
            }
            // Out-of-order issue window; 0 adapts it from stream idle time.
            "--lookahead" => lookahead = Some(value.parse().unwrap_or_else(|_| usage())),
            "--faults" => {
                faults = Some(FaultPlan::parse(&value).unwrap_or_else(|e| {
                    eprintln!("rlchol: bad --faults: {e}");
                    usage()
                }))
            }
            // Resolved after the loop: `auto` depends on the final --method.
            "--fallback" => fallback = Some(value),
            "--deadline-ms" => deadline_ms = Some(value.parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    let fallback = fallback.map(|v| {
        if v == "auto" {
            FallbackChain::recommended(method)
        } else {
            v.parse().unwrap_or_else(|e: String| {
                eprintln!("rlchol: bad --fallback: {e}");
                usage()
            })
        }
    });
    Args {
        cmd,
        path,
        method,
        ordering,
        size,
        solve_threads,
        factor_lanes,
        analyze_threads,
        gpu_threshold,
        retire,
        lookahead,
        faults,
        fallback,
        deadline_ms,
        json,
    }
}

fn load(path: &str) -> SymCsc {
    match read_matrix_market(path).and_then(|m| m.to_sym()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rlchol: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn solver_options(args: &Args) -> SolverOptions {
    SolverOptions {
        ordering: args.ordering,
        method: args.method,
        gpu: GpuOptions {
            machine: MachineModel::perlmutter(64).scale_compute(24.0),
            threshold: args.gpu_threshold.unwrap_or(12_000),
            overlap: true,
            streams: 0,
            assign: None,
            retire: args.retire,
            lookahead: args.lookahead,
            faults: None,
        },
        solve_threads: args.solve_threads,
        factor_lanes: args.factor_lanes,
        analyze_threads: args.analyze_threads,
        faults: args.faults.clone(),
        fallback: args.fallback.clone().unwrap_or_default(),
        deadline: match args.deadline_ms {
            Some(ms) => Deadline::wall(Duration::from_millis(ms)),
            None => Deadline::none(),
        },
        ..SolverOptions::default()
    }
}

fn main() {
    let args = parse_args();
    if args.cmd == "serve" {
        // `path` is the listen address; everything else configures the
        // solver options every request starts from.
        let cfg = rlchol::service::ServiceConfig {
            options: solver_options(&args),
            ..Default::default()
        };
        if let Err(e) = rlchol::service::run_server(&args.path, cfg) {
            eprintln!("rlchol serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let a = load(&args.path);
    if !args.json {
        println!("matrix: n = {}, nnz(lower) = {}", a.n(), a.nnz_lower());
    }
    match args.cmd.as_str() {
        "spy" => {
            println!(
                "{}",
                spy_lower(a.n(), args.size, |j| a.col_rows(j).to_vec())
            );
        }
        "analyze" => {
            // The staged API: symbolic analysis only, no numeric factor.
            let t0 = std::time::Instant::now();
            let handle = CholeskySolver::analyze(&a, &solver_options(&args));
            let wall = t0.elapsed();
            let sym = handle.symbolic();
            let stages = handle.analyze_breakdown();
            if args.json {
                let obj = JsonObj::new()
                    .str("op", "analyze")
                    .u64("n", a.n() as u64)
                    .u64("nnz_lower", a.nnz_lower() as u64)
                    .u64("supernodes", sym.nsup() as u64)
                    .u64("factor_nnz", sym.nnz)
                    .f64("factor_gflop", sym.flops / 1e9)
                    .u64("memory_bytes", handle.memory_bytes())
                    .raw(
                        "stages",
                        &rlchol::core::json::analyze_breakdown_json(&stages),
                    )
                    .f64("wall_ms", wall.as_secs_f64() * 1e3)
                    .finish();
                println!("{obj}");
                return;
            }
            println!("ordering: {:?}", args.ordering);
            println!("supernodes: {}", sym.nsup());
            println!("nnz(L): {}", sym.nnz);
            println!("factor flops: {:.3} Gflop", sym.flops / 1e9);
            println!(
                "merging: {} merges (+{} entries); PR blocks {} -> {}",
                sym.stats.merges,
                sym.stats.merge_extra_fill,
                sym.stats.blocks_before_pr,
                sym.stats.blocks_after_pr
            );
            println!(
                "largest supernode: {} entries; largest update matrix: {} entries",
                (0..sym.nsup())
                    .map(|s| sym.sn_storage(s))
                    .max()
                    .unwrap_or(0),
                sym.max_update_matrix_entries()
            );
            println!(
                "handle memory: {:.2} MiB resident ({:.2} MiB per additional lane, {} lane(s))",
                handle.memory_bytes() as f64 / (1 << 20) as f64,
                handle.lane_memory_bytes() as f64 / (1 << 20) as f64,
                handle.factor_lanes()
            );
            let ms = |d: Duration| d.as_secs_f64() * 1e3;
            println!(
                "stage breakdown ({} analyze thread(s)): etree {:.1} ms, \
                 colcount {:.1} ms, merge {:.1} ms, relind {:.1} ms, \
                 solve plan {:.1} ms, value map {:.1} ms",
                stages.threads,
                ms(stages.etree),
                ms(stages.colcount),
                ms(stages.merge),
                ms(stages.relind),
                ms(stages.solve_plan),
                ms(stages.value_map)
            );
            println!("analysis wall time: {:.1} ms", ms(wall));
        }
        "factor" => {
            let handle = CholeskySolver::analyze(&a, &solver_options(&args));
            let fact = handle.factor_with(&a).unwrap_or_else(|e| fail(e));
            let info = fact.info();
            if args.json {
                let obj = JsonObj::new()
                    .str("op", "factor")
                    .str("method", args.method.cli_name())
                    .u64("n", a.n() as u64)
                    .u64("nnz_lower", a.nnz_lower() as u64)
                    .u64("factor_nnz", handle.factor_nnz())
                    .u64("memory_bytes", handle.memory_bytes())
                    .raw("info", &factor_info_json(info))
                    .finish();
                println!("{obj}");
                return;
            }
            println!(
                "factored with {} in {:.1} ms (nnz(L) = {})",
                args.method.label(),
                info.wall.as_secs_f64() * 1e3,
                handle.factor_nnz()
            );
            if let Some(sim) = info.sim_seconds {
                println!(
                    "simulated platform time: {sim:.4} s ({} supernodes on GPU, {} stream pair(s))",
                    info.sn_on_gpu, info.streams_used
                );
            }
            if let Some(retire) = info.retire {
                println!(
                    "retirement: {} (lookahead {}, {} metadata transfer(s) saved)",
                    retire.name(),
                    info.lookahead,
                    info.transfers_saved
                );
            }
            if let Some(stats) = &info.gpu {
                println!(
                    "device: {} kernels, {:.1} MB transferred, peak memory {:.1} MB",
                    stats.kernel_launches,
                    stats.total_transfer_bytes() as f64 / 1e6,
                    stats.peak_bytes as f64 / 1e6
                );
            }
            if !info.recovery.is_empty() {
                println!("recovery ({} event(s)):", info.recovery.len());
                for event in &info.recovery {
                    println!("  {event}");
                }
            }
            let lanes = handle.lane_stats();
            println!(
                "workspace lanes: cap {}, created {}, peak in flight {}, \
                 {} checkout(s), {} contended, {} quarantined",
                lanes.cap,
                lanes.created,
                lanes.peak_in_use,
                lanes.checkouts,
                lanes.contended,
                lanes.quarantined
            );
        }
        "solve" => {
            let handle = CholeskySolver::analyze(&a, &solver_options(&args));
            let fact = handle.factor_with(&a).unwrap_or_else(|e| fail(e));
            // Manufactured b = A · 1, solved on the allocation-free path.
            let n = a.n();
            let ones = vec![1.0; n];
            let mut b = vec![0.0; n];
            a.matvec(&ones, &mut b);
            let info = handle.solve_info();
            if args.json {
                let mut x = vec![0.0; n];
                let mut ws = SolveWorkspace::warm(n, 1);
                let resid = handle
                    .solve_refined(&fact, &a, &b, &mut x, 2, &mut ws)
                    .unwrap_or_else(|e| {
                        eprintln!("rlchol: solve failed: {e}");
                        std::process::exit(1);
                    });
                let err = x.iter().fold(0.0f64, |m, &v| m.max((v - 1.0).abs()));
                let obj = JsonObj::new()
                    .str("op", "solve")
                    .str("method", args.method.cli_name())
                    .u64("n", a.n() as u64)
                    .u64("nnz_lower", a.nnz_lower() as u64)
                    .u64("factor_nnz", handle.factor_nnz())
                    .f64("max_error", err)
                    .f64("refined_residual", resid)
                    .raw("factor", &factor_info_json(fact.info()))
                    .raw("solve", &solve_info_json(&info))
                    .finish();
                println!("{obj}");
                return;
            }
            println!(
                "solve plan: {} levels, max width {}; path: {}",
                info.levels,
                info.max_width,
                if info.level_set && info.async_dispatch {
                    format!("async counters ({} threads)", info.threads)
                } else if info.level_set {
                    format!("level-set ({} threads)", info.threads)
                } else {
                    "serial".to_string()
                }
            );
            let mut x = vec![0.0; n];
            let mut ws = SolveWorkspace::warm(n, 1);
            let resid = handle
                .solve_refined(&fact, &a, &b, &mut x, 2, &mut ws)
                .unwrap_or_else(|e| {
                    eprintln!("rlchol: solve failed: {e}");
                    std::process::exit(1);
                });
            let err = x.iter().fold(0.0f64, |m, &v| m.max((v - 1.0).abs()));
            println!("solve: max |x - 1| = {err:.3e}, refined residual = {resid:.3e}");
        }
        _ => usage(),
    }
}

fn fail(e: rlchol::FactorError) -> ! {
    eprintln!("rlchol: factorization failed: {e}");
    std::process::exit(1);
}
