//! # rlchol — GPU-accelerated right-looking sparse Cholesky factorization
//!
//! A from-scratch Rust reproduction of *"GPU Accelerated Sparse Cholesky
//! Factorization"* (Karsavuran, Ng, Peyton — SC 2024, arXiv:2409.14009):
//! serial right-looking supernodal Cholesky in the paper's two variants
//! (**RL** with one coarse update matrix per supernode, **RLB** with
//! per-row-block updates), CPU-only and GPU-accelerated, on top of a
//! fully self-contained stack — sparse matrix types, fill-reducing
//! orderings, symbolic analysis with supernode amalgamation and partition
//! refinement, dense BLAS kernels, and a simulated GPU runtime with a
//! calibrated performance model (see `DESIGN.md` for the substitution
//! policy that replaces the paper's A100).
//!
//! ## Quick start — the staged API
//!
//! The pipeline has two halves. **Analysis** (ordering + symbolic
//! factorization) depends only on the sparsity pattern; **numeric
//! factorization** depends on the values. [`CholeskySolver::analyze`]
//! runs the first half once and returns a [`SymbolicCholesky`] handle;
//! any matrix with the same pattern can then be factored
//! ([`SymbolicCholesky::factor_with`]) or re-factored **in place**
//! ([`SymbolicCholesky::refactor`] — no re-ordering, no re-analysis, no
//! factor reallocation), and solves run in caller buffers with zero
//! per-call heap allocation ([`SymbolicCholesky::solve_into`],
//! [`SymbolicCholesky::solve_many`],
//! [`SymbolicCholesky::solve_refined`]). Solves follow a
//! [`SolvePlan`](core::solve::SolvePlan) cached on the handle: level
//! sets of the elimination tree that let the forward/backward sweeps
//! run tree-parallel on wide trees — bit-identical to the serial sweeps
//! at any thread count (see `core::solve`):
//!
//! ```
//! use rlchol::{CholeskySolver, SolveWorkspace, SolverOptions};
//! use rlchol::matgen::{grid3d, Stencil};
//!
//! // Two SPD systems with the same pattern, different values — the
//! // shape of an interior-point or time-stepping serving loop.
//! let a0 = grid3d(6, 6, 4, Stencil::Star7, 1, 42);
//! let a1 = grid3d(6, 6, 4, Stencil::Star7, 1, 43);
//! let n = a0.n();
//!
//! // Analyze once ...
//! let handle = CholeskySolver::analyze(&a0, &SolverOptions::default());
//! // ... factor many (refactor reuses the factor storage) ...
//! let mut fact = handle.factor_with(&a0).unwrap();
//! handle.refactor(&mut fact, &a1).unwrap();
//! // ... solve many, allocation-free once the workspace is warm.
//! let mut ws = SolveWorkspace::warm(n, 1);
//! let b = vec![1.0; n];
//! let mut x = vec![0.0; n];
//! handle.solve_into(&fact, &b, &mut x, &mut ws).unwrap();
//!
//! // Check the residual of A1 x = b.
//! let mut ax = vec![0.0; n];
//! a1.matvec(&x, &mut ax);
//! let err = ax.iter().zip(&b).fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
//! assert!(err < 1e-8);
//! ```
//!
//! For one-off jobs, [`CholeskySolver::factor`] still runs both halves
//! in a single call and offers allocating `solve`/`solve_refined`
//! convenience methods.
//!
//! ## Sharing a handle across threads
//!
//! [`SymbolicCholesky`] is `Send + Sync` and every factorization entry
//! point takes `&self`, so one analyzed handle serves many threads at
//! once — the "analyze once, factor many, **concurrently**" shape of a
//! batch traffic server. Engine resources live in a pool of independent
//! *workspace lanes*: up to `factor_lanes` factorizations of different
//! value sets run truly in parallel (more callers briefly block for a
//! lane), and every result is **bit-identical to the serial path** for
//! every engine. Lanes are created lazily, so a handle used from one
//! thread pays for one lane. The lane count follows the usual
//! precedence: an explicit nonzero [`SolverOptions::factor_lanes`] wins,
//! else the **`RLCHOL_FACTOR_LANES`** environment variable, else the
//! pool default.
//!
//! ```
//! use std::sync::Arc;
//! use rlchol::{CholeskySolver, SolverOptions};
//! use rlchol::matgen::{grid3d, Stencil};
//!
//! let a0 = grid3d(5, 5, 4, Stencil::Star7, 1, 7);
//! let opts = SolverOptions { factor_lanes: 4, ..SolverOptions::default() };
//! let handle = Arc::new(CholeskySolver::analyze(&a0, &opts));
//!
//! // Threads factor distinct value sets of the same pattern concurrently.
//! let workers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let handle = Arc::clone(&handle);
//!         std::thread::spawn(move || {
//!             let a = grid3d(5, 5, 4, Stencil::Star7, 1, 100 + t);
//!             handle.factor_with(&a).expect("SPD values")
//!         })
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//! assert!(handle.lane_stats().created <= 4);
//!
//! // Or hand a whole batch over and let it fan across the lanes.
//! let sets: Vec<_> = (0..8).map(|i| grid3d(5, 5, 4, Stencil::Star7, 1, 200 + i)).collect();
//! let refs: Vec<&rlchol::SymCsc> = sets.iter().collect();
//! let results = handle.batch_factor(&refs);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```
//!
//! ## Resilience — faults, fallbacks, retries, deadlines
//!
//! Device work can fail. The (simulated) GPU runtime surfaces failed
//! transfers, kernel faults, device OOM, and stream stalls as typed
//! [`DeviceError`]s, and the staged handle carries a degradation policy
//! that turns them into recoveries instead of lost factorizations:
//!
//! * [`SolverOptions::fallback`] — a [`FallbackChain`] of engines to
//!   re-run a failed factorization on, in order
//!   ([`FallbackChain::recommended`] ends every GPU engine's chain on a
//!   CPU engine with no device failure modes; `"rl-gpu>rl-cpu"` parses
//!   via `FromStr`).
//! * [`SolverOptions::retry`] — a [`RetryPolicy`] granting *transient*
//!   faults bounded retries on the same engine before the chain moves
//!   on.
//! * [`SolverOptions::deadline`] — a [`Deadline`] on wall-clock and/or
//!   simulated seconds, checked inside the executors so a stalled
//!   stream aborts with [`FactorError::DeadlineExceeded`] instead of
//!   hanging; [`SymbolicCholesky::cancel_token`] cancels in-flight and
//!   queued work from any thread ([`FactorError::Cancelled`]).
//!
//! Every recovery is recorded in [`FactorInfo::recovery`] as a
//! [`RecoveryEvent`], a workspace lane struck by a device fault or a
//! panic is **quarantined** (rebuilt on next checkout, counted in
//! [`LaneStats::quarantined`]), and the contract holds under any fault
//! schedule: a factorization returns a factor bit-identical to what the
//! serving engine produces on a clean run, or a typed error — never a
//! panic, a hang, or a silently wrong result.
//!
//! Faults are injected deterministically with a [`FaultPlan`]
//! ([`SolverOptions::faults`], or the **`RLCHOL_FAULTS`** environment
//! variable) using the grammar `transfer@N`, `kernel@N`, `oom@N`,
//! `stall@N=SECS`, `seed@SEED[#COUNT[/HORIZON]]`, comma-separated; a
//! `:t` suffix marks a fault transient (it fires once). Lane-checkout
//! waits are bounded by **`RLCHOL_LANE_WAIT_MS`** (typed
//! [`FactorError::LanesExhausted`] on expiry). The CLI mirrors all of
//! this: `rlchol factor --faults kernel@3:t --fallback auto
//! --deadline-ms 5000` prints each recovery event and the quarantine
//! count.
//!
//! ```
//! use rlchol::{
//!     CholeskySolver, FallbackChain, FaultPlan, GpuOptions, Method, RecoveryAction,
//!     RetryPolicy, SolverOptions,
//! };
//! use rlchol::matgen::{grid3d, Stencil};
//!
//! let a = grid3d(5, 5, 4, Stencil::Star7, 1, 11);
//! let opts = SolverOptions {
//!     method: Method::RlGpu,
//!     gpu: GpuOptions::with_threshold(0), // offload everything
//!     // Deterministic injected fault: the 4th kernel launch fails, once.
//!     faults: Some(FaultPlan::parse("kernel@3:t").unwrap()),
//!     retry: RetryPolicy::retries(1),
//!     fallback: FallbackChain::recommended(Method::RlGpu),
//!     ..SolverOptions::default()
//! };
//! let handle = CholeskySolver::analyze(&a, &opts);
//! let fact = handle.factor_with(&a).unwrap();
//! // The transient fault was retried on the same engine, and the
//! // result is bit-identical to a clean run.
//! assert!(matches!(fact.info().recovery[0].action, RecoveryAction::Retried));
//! let clean = CholeskySolver::factor(&a, &SolverOptions { faults: None, ..opts.clone() }).unwrap();
//! assert_eq!(fact.data(), clean.factor_data());
//! ```
//!
//! ## Serving — solver-as-a-service
//!
//! The [`service`] crate wraps the staged API in a long-running,
//! request-serving front end: a [`service::Service`] owns a
//! **symbolic-handle cache** (pattern fingerprint →
//! `Arc<SymbolicCholesky>`, LRU-evicted against a byte budget measured
//! by [`SymbolicCholesky::memory_bytes`], single-flight miss
//! coalescing) and an **admission gate** that sheds excess load with a
//! typed [`service::ServiceError::Overloaded`] instead of queueing
//! unboundedly. Per-request deadlines thread into the same
//! [`Deadline`]/[`CancelToken`] machinery the engines already honor.
//!
//! ```
//! use rlchol::service::{Request, Service, ServiceConfig};
//! use rlchol::matgen::{grid3d, Stencil};
//!
//! let service = Service::new(ServiceConfig::default());
//! let a = grid3d(4, 4, 3, Stencil::Star7, 1, 7);
//! let b = vec![1.0; a.n()];
//! let first = service.submit(Request::solve(a.clone(), b.clone())).unwrap();
//! let warm = service.submit(Request::solve(a, b)).unwrap();
//! assert_eq!(warm.metrics.cache, rlchol::service::CacheOutcome::Hit);
//! # let _ = first;
//! ```
//!
//! Out of process, the same service speaks a framed length-prefixed
//! protocol over localhost TCP (`rlchol-serve` daemon or `rlchol serve
//! 127.0.0.1:7211`; [`service::Client`] is the blocking client, with
//! optional connect/read timeouts via `service::ClientOptions`). On
//! Unix the server is **evented**: one readiness-polled event loop
//! multiplexes every connection over a fixed worker pool, assembling
//! frames incrementally and shedding stalled clients on a
//! per-connection deadline (`RLCHOL_NET_LEGACY=1` restores the
//! thread-per-connection loop). Knobs follow the usual precedence,
//! resolved once at service/server construction: explicit
//! [`service::ServiceConfig`] (or `service::ServeOptions`) field, else
//! env, else default —
//!
//! * **`RLCHOL_CACHE_BYTES`** — handle-cache budget, default 256 MiB;
//! * **`RLCHOL_QUEUE_DEPTH`** — admission limit, default 2 × factor
//!   lanes (which themselves resolve via `RLCHOL_FACTOR_LANES` as
//!   above);
//! * **`RLCHOL_NET_WORKERS`** — evented worker-pool width, default 4;
//! * **`RLCHOL_CONN_TIMEOUT_MS`** — per-connection idle/read deadline,
//!   default 30 000 ms;
//! * **`RLCHOL_BATCH_WINDOW_US`** — cross-request coalescing window:
//!   factor/solve requests on the same pattern fingerprint arriving
//!   within the window fan out through one `batch_factor_ctl` call
//!   (bitwise-identical results, per-request `batch_size` /
//!   `coalesce_wait` metrics); default 0 = off.
//!
//! ## Engines
//!
//! Numeric factorization dispatches through the
//! [`NumericEngine`](core::registry::NumericEngine) registry, keyed by
//! [`Method`] — serial CPU (RL, RLB, left-looking, multifrontal),
//! task-parallel CPU, and (simulated) GPU engines including the
//! pipelined multi-stream variants. [`Method::ALL`] enumerates every
//! registered engine; `Method` round-trips through `FromStr` via its
//! CLI name (`"rlb-gpu".parse()`) or paper label (`"RLB_G".parse()`).
//! Every engine reports a uniform
//! [`FactorInfo`](core::registry::FactorInfo): wall time, simulated
//! seconds, supernodes offloaded, stream pairs used, per-stream device
//! counters, and the CPU trace.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`sparse`] | CSC/CSR/COO, symmetric storage, permutations, Matrix Market I/O |
//! | [`ordering`] | nested dissection, minimum degree, RCM |
//! | [`symbolic`] | etree, column counts, supernodes, merging, partition refinement |
//! | [`dense`] | GEMM/SYRK/TRSM/POTRF kernels |
//! | [`gpu`] | the simulated GPU runtime (streams, events, device memory) |
//! | [`perfmodel`] | calibrated CPU/GPU cost models and traces |
//! | [`matgen`] | SPD generators and the paper's 21-matrix synthetic suite |
//! | [`core`] | engines + registry, staged solver, hybrid dispatch, solves |
//! | [`service`] | request serving: handle cache, admission control, wire protocol |
//! | [`report`] | performance profiles, tables, plots |
//!
//! ## Threads, streams and solve lanes
//!
//! The task-parallel engines ([`Method::RlCpuPar`], [`Method::RlbCpuPar`])
//! and the striped dense kernels share one persistent work-stealing pool;
//! the pipelined GPU engines ([`Method::RlGpuPipe`], [`Method::RlbGpuPipe`])
//! dispatch ready supernodes onto simulated compute/copy stream pairs
//! (assignment policy via `RLCHOL_STREAM_ASSIGN={rr,ll}`; retirement
//! discipline via `RLCHOL_RETIRE={inorder,ooo}` with the out-of-order
//! issue window via `RLCHOL_LOOKAHEAD`); the level-set triangular solves
//! dispatch each level of the solve plan onto the same pool (switching
//! to barrier-free counter dispatch when the handle resolved the `ooo`
//! retirement mode). Sizing follows one precedence rule, resolved when
//! [`CholeskySolver::analyze`] builds the handle:
//!
//! 1. An explicit nonzero [`SolverOptions::threads`] /
//!    [`SolverOptions::solve_threads`] / [`SolverOptions::factor_lanes`] /
//!    [`SolverOptions::analyze_threads`] /
//!    [`GpuOptions::streams`](core::engine::GpuOptions::streams), or an
//!    explicit [`GpuOptions::retire`](core::engine::GpuOptions::retire) /
//!    [`GpuOptions::lookahead`](core::engine::GpuOptions::lookahead),
//!    wins.
//! 2. A zero (`None` for retire/lookahead) defers to the
//!    **`RLCHOL_THREADS`** / **`RLCHOL_SOLVE_THREADS`** /
//!    **`RLCHOL_FACTOR_LANES`** / **`RLCHOL_ANALYZE_THREADS`** /
//!    **`RLCHOL_STREAMS`** /
//!    **`RLCHOL_RETIRE`** / **`RLCHOL_LOOKAHEAD`** environment variable
//!    (positive integer; `inorder`/`ooo` for retire).
//! 3. Unset environment falls back to
//!    [`std::thread::available_parallelism`] (threads, solve lanes,
//!    factor lanes, analyze lanes — solves and analyses additionally
//!    stay serial below a small-system cutoff) / the runtime default of
//!    2 (stream pairs) / in-order retirement with an adaptive lookahead
//!    window (lookahead 0).
//!
//! One lane / one pair degenerates to the serial / single-stream
//! schedule, bit-exactly — and the level-set solves, lane-pooled
//! factorizations and thread-parallel symbolic analyses are
//! bit-identical to serial at *any* lane count, so the settings are
//! purely about speed.

pub use rlchol_core as core;
pub use rlchol_dense as dense;
pub use rlchol_gpu as gpu;
pub use rlchol_matgen as matgen;
pub use rlchol_ordering as ordering;
pub use rlchol_perfmodel as perfmodel;
pub use rlchol_report as report;
pub use rlchol_service as service;
pub use rlchol_sparse as sparse;
pub use rlchol_symbolic as symbolic;

pub use rlchol_core::engine::{GpuOptions, Method};
pub use rlchol_core::{
    CancelToken, CholeskySolver, Deadline, FactorData, FactorError, FactorInfo, Factorization,
    FallbackChain, LaneStats, RecoveryAction, RecoveryEvent, RetryPolicy, SolveError,
    SolveWorkspace, SolverOptions, SymbolicCholesky,
};
pub use rlchol_gpu::{DeviceError, FaultKind, FaultPlan, FaultSpec};
pub use rlchol_ordering::OrderingMethod;
pub use rlchol_sparse::{SymCsc, TripletMatrix};
pub use rlchol_symbolic::{SymbolicFactor, SymbolicOptions};
