//! # rlchol — GPU-accelerated right-looking sparse Cholesky factorization
//!
//! A from-scratch Rust reproduction of *"GPU Accelerated Sparse Cholesky
//! Factorization"* (Karsavuran, Ng, Peyton — SC 2024, arXiv:2409.14009):
//! serial right-looking supernodal Cholesky in the paper's two variants
//! (**RL** with one coarse update matrix per supernode, **RLB** with
//! per-row-block updates), CPU-only and GPU-accelerated, on top of a
//! fully self-contained stack — sparse matrix types, fill-reducing
//! orderings, symbolic analysis with supernode amalgamation and partition
//! refinement, dense BLAS kernels, and a simulated GPU runtime with a
//! calibrated performance model (see `DESIGN.md` for the substitution
//! policy that replaces the paper's A100).
//!
//! ## Quick start
//!
//! ```
//! use rlchol::{CholeskySolver, SolverOptions};
//! use rlchol::matgen::laplace3d;
//!
//! // A small 3-D Poisson-like SPD system.
//! let a = laplace3d(6, 42);
//! let solver = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
//!
//! let b = vec![1.0; a.n()];
//! let x = solver.solve(&b);
//!
//! // Check the residual of A x = b.
//! let mut ax = vec![0.0; a.n()];
//! a.matvec(&x, &mut ax);
//! let err = ax.iter().zip(&b).fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
//! assert!(err < 1e-8);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`sparse`] | CSC/CSR/COO, symmetric storage, permutations, Matrix Market I/O |
//! | [`ordering`] | nested dissection, minimum degree, RCM |
//! | [`symbolic`] | etree, column counts, supernodes, merging, partition refinement |
//! | [`dense`] | GEMM/SYRK/TRSM/POTRF kernels |
//! | [`gpu`] | the simulated GPU runtime (streams, events, device memory) |
//! | [`perfmodel`] | calibrated CPU/GPU cost models and traces |
//! | [`matgen`] | SPD generators and the paper's 21-matrix synthetic suite |
//! | [`core`] | the RL/RLB engines (serial + task-parallel), hybrid dispatch, solves, [`CholeskySolver`] |
//! | [`report`] | performance profiles, tables, plots |
//!
//! ## Threads and streams
//!
//! The task-parallel engines ([`Method::RlCpuPar`], [`Method::RlbCpuPar`])
//! and the striped dense kernels share one persistent work-stealing pool,
//! sized by the **`RLCHOL_THREADS`** environment variable (positive
//! integer) or, when unset, by [`std::thread::available_parallelism`].
//!
//! The pipelined GPU engines ([`Method::RlGpuPipe`],
//! [`Method::RlbGpuPipe`]) dispatch independent ready supernodes onto
//! simulated compute/copy stream pairs; the pair count comes from the
//! **`RLCHOL_STREAMS`** environment variable (positive integer, default
//! 2) unless set explicitly in
//! [`GpuOptions::streams`](core::engine::GpuOptions::streams). One pair
//! degenerates to the single-stream schedule, bit-exactly.

pub use rlchol_core as core;
pub use rlchol_dense as dense;
pub use rlchol_gpu as gpu;
pub use rlchol_matgen as matgen;
pub use rlchol_ordering as ordering;
pub use rlchol_perfmodel as perfmodel;
pub use rlchol_report as report;
pub use rlchol_sparse as sparse;
pub use rlchol_symbolic as symbolic;

pub use rlchol_core::engine::{GpuOptions, Method};
pub use rlchol_core::{CholeskySolver, FactorError, SolverOptions};
pub use rlchol_ordering::OrderingMethod;
pub use rlchol_sparse::{SymCsc, TripletMatrix};
pub use rlchol_symbolic::{SymbolicFactor, SymbolicOptions};
