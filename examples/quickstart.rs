//! Quickstart: factor and solve a 3-D Poisson-like SPD system with the
//! staged API (analyze once → factor → solve allocation-free).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline a downstream user would run: generate (or
//! load) a sparse SPD matrix, analyze it with nested-dissection
//! ordering, factor with the RL engine, solve against a manufactured
//! right-hand side through a reusable `SolveWorkspace`, and report the
//! residual plus the structural statistics the paper's terminology
//! describes (supernodes, factor fill, flops).

use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, Method, SolveWorkspace, SolverOptions};

fn main() {
    // A 20x20x20 7-point grid: n = 8000, the "hello world" of sparse SPD.
    let a = grid3d(20, 20, 20, Stencil::Star7, 1, 7);
    println!("matrix: n = {}, nnz(lower) = {}", a.n(), a.nnz_lower());

    let opts = SolverOptions {
        method: Method::RlCpu,
        ..SolverOptions::default()
    };

    // Stage 1: ordering + symbolic analysis (pattern only, no values).
    let t0 = std::time::Instant::now();
    let handle = CholeskySolver::analyze(&a, &opts);
    let t_analyze = t0.elapsed();

    let sym = handle.symbolic();
    println!(
        "analyze: {} supernodes, nnz(L) = {}, {:.2} Gflop, wall {:.1} ms",
        sym.nsup(),
        sym.nnz,
        sym.flops / 1e9,
        t_analyze.as_secs_f64() * 1e3
    );
    println!(
        "setup:   {} merges (+{} entries fill), {} -> {} row blocks after PR",
        sym.stats.merges,
        sym.stats.merge_extra_fill,
        sym.stats.blocks_before_pr,
        sym.stats.blocks_after_pr
    );

    // Stage 2: numeric factorization (values; repeatable per pattern).
    let fact = handle.factor_with(&a).expect("SPD input");
    println!(
        "factor:  {} in {:.1} ms",
        handle.method().label(),
        fact.info().wall.as_secs_f64() * 1e3
    );

    // Stage 3: solve in caller buffers — zero allocation once `ws` is warm.
    let n = a.n();
    let x_true: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 100.0).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x_true, &mut b);

    let mut x = vec![0.0; n];
    let mut ws = SolveWorkspace::warm(n, 1);
    let resid = handle
        .solve_refined(&fact, &a, &b, &mut x, 2, &mut ws)
        .expect("b is sized to the system");
    let err = x
        .iter()
        .zip(&x_true)
        .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
    println!("solve:   max |x - x*| = {err:.3e}, refined residual = {resid:.3e}");
    assert!(err < 1e-8, "solution should be accurate");
    println!("OK");
}
