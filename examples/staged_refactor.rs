//! Analyze once, factor many: the staged serving loop.
//!
//! ```sh
//! cargo run --release --example staged_refactor
//! ```
//!
//! Simulates the refactorization workload of an interior-point or
//! time-stepping solver: a fixed sparsity pattern whose values change
//! every iteration. The `SymbolicCholesky` handle pays ordering +
//! symbolic analysis once; each iteration then runs `refactor` (reusing
//! the factor storage — no reallocation) followed by a multi-RHS solve
//! through a warm `SolveWorkspace` (zero per-call heap allocation).

use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, Method, SolveWorkspace, SolverOptions};

const STEPS: usize = 8;
const NRHS: usize = 4;

fn main() {
    let (k, dofs) = (12, 1);
    let pattern_seed = 1000;
    let a0 = grid3d(k, k, k, Stencil::Star7, dofs, pattern_seed);
    let n = a0.n();
    println!("matrix: n = {n}, nnz(lower) = {}", a0.nnz_lower());

    let opts = SolverOptions {
        method: Method::RlbCpu,
        ..SolverOptions::default()
    };

    let t0 = std::time::Instant::now();
    let handle = CholeskySolver::analyze(&a0, &opts);
    let t_analyze = t0.elapsed().as_secs_f64();
    println!(
        "analyze once: {:.1} ms ({} supernodes, nnz(L) = {})",
        t_analyze * 1e3,
        handle.symbolic().nsup(),
        handle.factor_nnz()
    );

    let t0 = std::time::Instant::now();
    let mut fact = handle.factor_with(&a0).expect("SPD input");
    println!("first factor: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let mut ws = SolveWorkspace::warm(n, NRHS);
    let mut x = vec![0.0; n * NRHS];
    let mut refactor_total = 0.0;
    for step in 1..=STEPS {
        // New values on the same pattern (a new seed re-rolls values;
        // the grid fixes the structure).
        let a = grid3d(k, k, k, Stencil::Star7, dofs, pattern_seed + step as u64);
        let t0 = std::time::Instant::now();
        handle.refactor(&mut fact, &a).expect("SPD values");
        let t_refactor = t0.elapsed().as_secs_f64();
        refactor_total += t_refactor;

        // Blocked multi-RHS solve in caller buffers.
        let b: Vec<f64> = (0..n * NRHS)
            .map(|i| ((i * 29 + step * 7) % 23) as f64 - 11.0)
            .collect();
        handle
            .solve_many(&fact, &b, &mut x, NRHS, &mut ws)
            .expect("blocks are sized to the system");

        // Residual check on the first RHS.
        let mut ax = vec![0.0; n];
        a.matvec(&x[..n], &mut ax);
        let err = ax
            .iter()
            .zip(&b[..n])
            .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
        println!(
            "step {step}: refactor {:.1} ms, solve x{NRHS}, residual {err:.3e}",
            t_refactor * 1e3
        );
        assert!(err < 1e-6, "residual must stay small");
    }
    println!(
        "amortization: analysis {:.1} ms paid once vs {:.1} ms mean refactor \
         ({} steps; one-shot would re-analyze every step)",
        t_analyze * 1e3,
        refactor_total / STEPS as f64 * 1e3,
        STEPS
    );
    println!("OK");
}
