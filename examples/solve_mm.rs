//! Matrix Market pipeline: read an SPD `.mtx` file (or write and re-read
//! a generated one), factor it with every ordering, and compare fill —
//! then solve with iterative refinement.
//!
//! ```sh
//! cargo run --release --example solve_mm [path/to/matrix.mtx]
//! ```

use rlchol::matgen::laplace2d;
use rlchol::sparse::{read_matrix_market, write_matrix_market, SymCsc};
use rlchol::{CholeskySolver, OrderingMethod, SolverOptions};

fn main() {
    let arg = std::env::args().nth(1);
    let a: SymCsc = match arg {
        Some(path) => {
            println!("reading {path}");
            read_matrix_market(&path)
                .expect("readable Matrix Market file")
                .to_sym()
                .expect("square symmetric matrix")
        }
        None => {
            // No input given: generate a 2-D Laplacian, round-trip it
            // through the Matrix Market writer to exercise the I/O path.
            let a = laplace2d(40, 11);
            let path = std::env::temp_dir().join("rlchol_demo.mtx");
            let mut f = std::fs::File::create(&path).expect("temp file");
            write_matrix_market(&mut f, &a).expect("write .mtx");
            println!("no input given; wrote demo matrix to {}", path.display());
            read_matrix_market(&path)
                .expect("re-read demo matrix")
                .to_sym()
                .expect("valid symmetric matrix")
        }
    };
    println!("matrix: n = {}, nnz(lower) = {}\n", a.n(), a.nnz_lower());

    println!("{:<18} {:>12} {:>14}", "ordering", "nnz(L)", "factor Gflop");
    let mut chosen = None;
    for (name, method) in [
        ("natural", OrderingMethod::Natural),
        ("RCM", OrderingMethod::Rcm),
        ("min degree", OrderingMethod::MinDegree),
        ("nested dissection", OrderingMethod::NestedDissection),
    ] {
        let opts = SolverOptions {
            ordering: method,
            ..SolverOptions::default()
        };
        let solver = CholeskySolver::factor(&a, &opts).expect("SPD input");
        println!(
            "{:<18} {:>12} {:>14.3}",
            name,
            solver.factor_nnz(),
            solver.symbolic().flops / 1e9
        );
        if method == OrderingMethod::NestedDissection {
            chosen = Some(solver);
        }
    }

    let solver = chosen.unwrap();
    let n = a.n();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 7919) % 1000) as f64 / 1000.0)
        .collect();
    let (x, resid) = solver.solve_refined(&a, &b, 3);
    println!(
        "\nsolved with nested dissection: refined residual {resid:.3e} (n = {}, |x|_inf = {:.3})",
        x.len(),
        x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    );
}
