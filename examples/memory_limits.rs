//! Device memory limits: reproduce the nlpkkt120 story of Tables I/II at
//! toy scale — RL needs the full update matrix on the device and fails
//! once capacity drops below it; streaming RLB (v2) keeps factoring.
//!
//! ```sh
//! cargo run --release --example memory_limits
//! ```

use rlchol::core::gpu_rl::factor_rl_gpu;
use rlchol::core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol::core::FactorError;
use rlchol::matgen::laplace3d;
use rlchol::ordering::{order, OrderingMethod};
use rlchol::perfmodel::MachineModel;
use rlchol::symbolic::{analyze, SymbolicOptions};
use rlchol::GpuOptions;

fn main() {
    let a = laplace3d(12, 5);
    let fill = order(&a, OrderingMethod::NestedDissection);
    let a_fill = a.permute(&fill);
    let sym = analyze(&a_fill, &SymbolicOptions::default());
    let a_fact = a_fill.permute(&sym.perm);

    let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
    let max_upd = sym.max_update_matrix_entries();
    println!(
        "n = {}: largest supernode panel {} doubles, largest update matrix {} doubles",
        a.n(),
        max_panel,
        max_upd
    );
    println!("RL needs panel + full update on the device; RLB v2 streams block chunks.\n");

    let kib = |x: usize| (x * 8) as f64 / 1024.0;
    println!(
        "{:>12} | {:>10} | {:>26}",
        "capacity", "RL", "RLB v2 (streaming)"
    );
    for frac in [1.2, 0.9, 0.6, 0.3] {
        let cap = ((max_panel as f64 + max_upd as f64 * frac) * 8.0) as u64;
        let opts = GpuOptions {
            machine: MachineModel::perlmutter(64)
                .scale_compute(24.0)
                .with_gpu_capacity(cap),
            threshold: 0,
            overlap: true,
            streams: 0,
            assign: None,
            faults: None,
            retire: None,
            lookahead: None,
        };
        let rl = match factor_rl_gpu(&sym, &a_fact, &opts) {
            Ok(r) => format!("{:.1} KiB peak", r.stats.peak_bytes as f64 / 1024.0),
            Err(FactorError::GpuOutOfMemory { .. }) => "OUT OF MEMORY".to_string(),
            Err(e) => panic!("unexpected: {e}"),
        };
        let rlb = match factor_rlb_gpu(&sym, &a_fact, &opts, RlbGpuVersion::V2) {
            Ok(r) => format!(
                "ok, {} D2H ops, {:.1} KiB peak",
                r.stats.d2h_count,
                r.stats.peak_bytes as f64 / 1024.0
            ),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "{:>9.1} KiB | {:>10} | {:>26}",
            kib(max_panel) + kib(max_upd) * frac,
            rl,
            rlb
        );
    }
    println!(
        "\nAs capacity shrinks below panel+update, RL fails (Table I's nlpkkt120 row)\n\
         while RLB v2 splits blocks to fit and transfers more, smaller pieces\n\
         (Table II factors nlpkkt120 successfully)."
    );
}
