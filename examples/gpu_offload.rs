//! GPU offload walkthrough: factor one matrix under every engine of the
//! paper and print the simulated timeline breakdown.
//!
//! ```sh
//! cargo run --release --example gpu_offload
//! ```
//!
//! Shows §III in action: RL's one coarse DSYRK vs RLB's many per-block
//! calls, the transfer traffic each incurs, the hybrid threshold keeping
//! small supernodes on the CPU, and the device memory footprints.

use rlchol::core::engine::GpuOptions;
use rlchol::core::gpu_rl::factor_rl_gpu;
use rlchol::core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol::core::rl::factor_rl_cpu;
use rlchol::core::rlb::factor_rlb_cpu;
use rlchol::matgen::{grid3d, Stencil};
use rlchol::ordering::{order, OrderingMethod};
use rlchol::perfmodel::MachineModel;
use rlchol::symbolic::{analyze, SymbolicOptions};

fn main() {
    // A 3-dof 14^3 elasticity-like problem (n = 8232).
    let a = grid3d(14, 14, 14, Stencil::Star7, 3, 99);
    let fill = order(&a, OrderingMethod::NestedDissection);
    let a_fill = a.permute(&fill);
    let sym = analyze(&a_fill, &SymbolicOptions::default());
    let a_fact = a_fill.permute(&sym.perm);
    println!(
        "matrix n = {}, {} supernodes, nnz(L) = {}, {:.2} Gflop",
        a.n(),
        sym.nsup(),
        sym.nnz,
        sym.flops / 1e9
    );

    // CPU baselines: trace replay over the paper's thread sweep under
    // the scaled machine model (see DESIGN.md on machine scaling).
    let scale = 24.0;
    let rl_cpu = factor_rl_cpu(&sym, &a_fact).unwrap();
    let rlb_cpu = factor_rlb_cpu(&sym, &a_fact).unwrap();
    let replay = |run: &rlchol::core::engine::CpuRun| {
        rlchol::perfmodel::PAPER_THREAD_SWEEP
            .iter()
            .map(|&t| {
                let m = rlchol::perfmodel::perlmutter_cpu(t).scale_compute(scale);
                (rlchol::perfmodel::replay_cpu(&run.trace, &m), t)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap()
    };
    let (t_rl, th_rl) = replay(&rl_cpu);
    let (t_rlb, th_rlb) = replay(&rlb_cpu);
    let (best, label, threads) = if t_rl <= t_rlb {
        (t_rl, "RL_C", th_rl)
    } else {
        (t_rlb, "RLB_C", th_rlb)
    };
    println!(
        "\nbest CPU: {} at {} MKL threads -> {:.4} s (simulated)",
        label, threads, best
    );
    println!(
        "  RL  issues {} BLAS calls; RLB issues {} (the per-block decomposition)",
        rl_cpu.trace.blas_calls(),
        rlb_cpu.trace.blas_calls()
    );

    // GPU engines under a mid-size threshold.
    let threshold = 20_000;
    let opts = GpuOptions {
        machine: MachineModel::perlmutter(64).scale_compute(scale),
        threshold,
        overlap: true,
        streams: 0,
        assign: None,
        faults: None,
        retire: None,
        lookahead: None,
    };
    println!("\nGPU-accelerated engines (threshold = {threshold}, overlap on):");
    let runs = [
        ("RL_G  ", factor_rl_gpu(&sym, &a_fact, &opts).unwrap()),
        (
            "RLB_G1",
            factor_rlb_gpu(&sym, &a_fact, &opts, RlbGpuVersion::V1).unwrap(),
        ),
        (
            "RLB_G2",
            factor_rlb_gpu(&sym, &a_fact, &opts, RlbGpuVersion::V2).unwrap(),
        ),
    ];
    for (name, run) in &runs {
        println!(
            "  {name}: {:.4} s  (speedup {:.2}x) | {} supernodes on GPU | \
             kernels {:.4}s transfers {:.4}s host {:.4}s | peak dev mem {:.1} MiB | {} D2H ops",
            run.sim_seconds,
            best / run.sim_seconds,
            run.sn_on_gpu,
            run.stats.kernel_seconds,
            run.stats.transfer_seconds,
            run.stats.host_seconds,
            run.stats.peak_bytes as f64 / (1 << 20) as f64,
            run.stats.d2h_count,
        );
    }
    // All engines agree numerically.
    let worst = runs
        .iter()
        .map(|(_, r)| rl_cpu.factor.max_rel_diff(&r.factor))
        .fold(0.0f64, f64::max);
    println!("\nmax factor disagreement across engines: {worst:.2e}");
    assert!(worst < 1e-11);
}
