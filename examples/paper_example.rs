//! The paper's worked example (Figures 1 and 2): the 15×15 factor, its
//! supernodes, the supernodal elimination tree, supernode J1's update
//! matrix, and the relative indices used for assembly.
//!
//! ```sh
//! cargo run --release --example paper_example
//! ```

use rlchol::sparse::{SymCsc, TripletMatrix};
use rlchol::symbolic::colcount::col_counts;
use rlchol::symbolic::etree::EliminationTree;
use rlchol::symbolic::relind::{generalized_from_bottom, relative_indices};
use rlchol::symbolic::supernodes::{
    find_supernodes, paper_fig1_edges, supernodal_etree, supernode_rows,
};
use rlchol::symbolic::NONE;

fn main() {
    // Build the Figure 1 pattern (0-based indices internally; the paper
    // numbers columns 1..15).
    let n = 15;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, 4.0);
    }
    for (i, j) in paper_fig1_edges() {
        t.push(i, j, -0.5);
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();

    let etree = EliminationTree::from_matrix(&a);
    let counts = col_counts(&a, &etree);
    let sn = find_supernodes(&etree, &counts, false);
    let rows = supernode_rows(&a, &sn);
    let parent = supernodal_etree(&sn, &rows);

    println!("Figure 1 — supernodes of the 15x15 factor (columns are 1-based):\n");
    for s in 0..sn.nsup() {
        let cols: Vec<usize> = (sn.first_col(s)..sn.end_col(s)).map(|c| c + 1).collect();
        let below: Vec<usize> = rows[s].iter().map(|&r| r + 1).collect();
        println!(
            "  J{} = {:?}  rows below: {:?}  (stored as a {}x{} dense array)",
            s + 1,
            cols,
            below,
            sn.ncols(s) + rows[s].len(),
            sn.ncols(s)
        );
    }

    println!("\nSupernodal elimination tree:");
    for s in 0..sn.nsup() {
        if parent[s] == NONE {
            println!("  J{} is the root", s + 1);
        } else {
            println!("  J{} -> J{}", s + 1, parent[s] + 1);
        }
    }

    // Figure 2: the update matrix of J1.
    println!("\nFigure 2 — update matrix of J1 (rows/cols indexed by J1's rows):");
    let j1 = 0;
    let below: Vec<usize> = rows[j1].iter().map(|&r| r + 1).collect();
    println!(
        "  U_J1 is {}x{} over global rows {:?}",
        below.len(),
        below.len(),
        below
    );
    println!("  (entries L[i, J1] . L[j, J1]^T for i >= j in that set)");

    // Relative indices: where J1's rows land inside J3 and J6.
    let j3 = 2;
    let j6 = 5;
    for (name, p) in [("J3", j3), ("J6", j6)] {
        let p_first = sn.first_col(p);
        let p_ncols = sn.ncols(p);
        let p_rows = &rows[p];
        let sub: Vec<usize> = rows[j1]
            .iter()
            .copied()
            .filter(|&r| r >= p_first && (r < sn.end_col(p) || p_rows.binary_search(&r).is_ok()))
            .collect();
        if sub.is_empty() {
            continue;
        }
        let rel = relative_indices(&sub, p_first, p_ncols, p_rows);
        let list_len = p_ncols + p_rows.len();
        println!(
            "\n  relind(J1, {name}): global rows {:?} -> positions {:?} in {name}'s index list",
            sub.iter().map(|&r| r + 1).collect::<Vec<_>>(),
            rel
        );
        println!(
            "    bottom-based (the paper's generalized convention): {:?}",
            generalized_from_bottom(&rel, list_len)
        );
    }
    println!(
        "\nThe paper reports relind(J3,J6) = [2,1,0] (bottom-based) and a single\n\
         index relind(J1,J6) = [1] for J1's lone row in J6 — matching the output\n\
         above. See rlchol-symbolic's relind module docs for the convention map."
    );
}
