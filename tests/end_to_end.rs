//! End-to-end integration tests: the full pipeline (ordering → symbolic →
//! numeric → solve) across matrix families, engines and options.

use rlchol::core::engine::{GpuOptions, Method};
use rlchol::matgen::{grid2d, grid3d, kkt3d, perturbed_grid3d, Stencil};
use rlchol::perfmodel::MachineModel;
use rlchol::sparse::SymCsc;
use rlchol::{CholeskySolver, OrderingMethod, SolverOptions, SymbolicOptions};

fn solve_error(a: &SymCsc, opts: &SolverOptions) -> f64 {
    let solver = CholeskySolver::factor(a, opts).expect("SPD input must factor");
    let n = a.n();
    let x_true: Vec<f64> = (0..n).map(|i| ((i * 131) % 19) as f64 - 9.0).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x_true, &mut b);
    let x = solver.solve(&b);
    x.iter()
        .zip(&x_true)
        .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()))
}

fn gpu_opts(threshold: usize) -> GpuOptions {
    GpuOptions {
        machine: MachineModel::perlmutter(64).scale_compute(24.0),
        threshold,
        overlap: true,
        streams: 0,
        assign: None,
        faults: None,
        retire: None,
        lookahead: None,
    }
}

#[test]
fn every_method_solves_every_family() {
    let matrices: Vec<(&str, SymCsc)> = vec![
        ("grid2d", grid2d(12, 9, Stencil::Star5, 1, 1)),
        ("grid3d", grid3d(6, 5, 4, Stencil::Star7, 1, 2)),
        ("grid3d-3dof", grid3d(4, 4, 4, Stencil::Star7, 3, 3)),
        ("star27", grid3d(5, 5, 5, Stencil::Star27, 1, 4)),
        (
            "perturbed",
            perturbed_grid3d(5, 5, 5, Stencil::Star7, 1, 0.3, 5),
        ),
        ("kkt", kkt3d(4, 6)),
    ];
    let methods = [
        Method::RlCpu,
        Method::RlbCpu,
        Method::RlGpu,
        Method::RlbGpuV1,
        Method::RlbGpuV2,
        Method::RlGpuPipe,
        Method::RlbGpuPipe,
    ];
    for (name, a) in &matrices {
        for &method in &methods {
            let opts = SolverOptions {
                method,
                gpu: gpu_opts(200),
                ..SolverOptions::default()
            };
            let err = solve_error(a, &opts);
            assert!(err < 1e-8, "{name} via {method:?}: error {err}");
        }
    }
}

#[test]
fn all_orderings_produce_correct_solves() {
    let a = grid2d(15, 15, Stencil::Star9, 1, 7);
    for ordering in [
        OrderingMethod::Natural,
        OrderingMethod::Rcm,
        OrderingMethod::MinDegree,
        OrderingMethod::NestedDissection,
    ] {
        let opts = SolverOptions {
            ordering,
            ..SolverOptions::default()
        };
        let err = solve_error(&a, &opts);
        assert!(err < 1e-8, "{ordering:?}: error {err}");
    }
}

#[test]
fn symbolic_option_combinations_are_all_correct() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 8);
    for merge in [false, true] {
        for pr in [false, true] {
            for fundamental in [false, true] {
                let opts = SolverOptions {
                    symbolic: SymbolicOptions {
                        merge,
                        partition_refine: pr,
                        fundamental,
                        merge_growth_cap: 0.25,
                    },
                    method: Method::RlbCpu,
                    ..SolverOptions::default()
                };
                let err = solve_error(&a, &opts);
                assert!(
                    err < 1e-8,
                    "merge={merge} pr={pr} fundamental={fundamental}: {err}"
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_the_factor_bitwise_tolerance() {
    use rlchol::ordering::order;
    use rlchol::symbolic::analyze;
    let a = grid3d(6, 6, 6, Stencil::Star7, 1, 9);
    let fill = order(&a, OrderingMethod::NestedDissection);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let afact = af.permute(&sym.perm);
    let rl = rlchol::core::rl::factor_rl_cpu(&sym, &afact).unwrap();
    let rlb = rlchol::core::rlb::factor_rlb_cpu(&sym, &afact).unwrap();
    let rlg = rlchol::core::gpu_rl::factor_rl_gpu(&sym, &afact, &gpu_opts(500)).unwrap();
    let rlbg1 = rlchol::core::gpu_rlb::factor_rlb_gpu(
        &sym,
        &afact,
        &gpu_opts(500),
        rlchol::core::gpu_rlb::RlbGpuVersion::V1,
    )
    .unwrap();
    let rlbg2 = rlchol::core::gpu_rlb::factor_rlb_gpu(
        &sym,
        &afact,
        &gpu_opts(500),
        rlchol::core::gpu_rlb::RlbGpuVersion::V2,
    )
    .unwrap();
    for (name, f) in [
        ("rlb", &rlb.factor),
        ("rl_gpu", &rlg.factor),
        ("rlb_gpu_v1", &rlbg1.factor),
        ("rlb_gpu_v2", &rlbg2.factor),
    ] {
        let d = rl.factor.max_rel_diff(f);
        assert!(d < 1e-11, "{name} differs from RL by {d}");
    }
}

#[test]
fn factorization_residual_is_small_on_suite_scale_matrix() {
    use rlchol::ordering::order;
    use rlchol::symbolic::analyze;
    // A mid-size 3-dof problem similar to the suite's geomechanics family.
    let a = grid3d(9, 9, 9, Stencil::Star7, 3, 10);
    let fill = order(&a, OrderingMethod::NestedDissection);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let afact = af.permute(&sym.perm);
    let run = rlchol::core::rl::factor_rl_cpu(&sym, &afact).unwrap();
    let resid = run.factor.residual(&sym, &afact, 3);
    assert!(resid < 1e-12, "residual {resid}");
}

#[test]
fn indefinite_matrix_fails_cleanly_through_the_pipeline() {
    use rlchol::sparse::TripletMatrix;
    let mut t = TripletMatrix::new(4, 4);
    for j in 0..4 {
        t.push(j, j, 1.0);
    }
    t.push(1, 0, 3.0); // 2x2 leading block indefinite
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    let err = CholeskySolver::factor(&a, &SolverOptions::default());
    assert!(matches!(
        err,
        Err(rlchol::FactorError::NotPositiveDefinite { .. })
    ));
}
