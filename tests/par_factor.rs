//! End-to-end tests of the task-parallel numeric factorization: the
//! elimination-tree scheduler must reproduce the serial engines across
//! thread counts and tree shapes, and propagate numeric failures cleanly
//! out of the pool.

use rlchol::core::rl::factor_rl_cpu;
use rlchol::core::rlb::factor_rlb_cpu;
use rlchol::core::sched::{factor_rl_cpu_par, factor_rlb_cpu_par};
use rlchol::core::FactorError;
use rlchol::matgen::{grid3d, laplace2d, Stencil};
use rlchol::sparse::{SymCsc, TripletMatrix};
use rlchol::symbolic::{analyze, SymbolicOptions};
use rlchol::{CholeskySolver, Method, SolverOptions};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn prepared(a: &SymCsc) -> (rlchol::SymbolicFactor, SymCsc) {
    let sym = analyze(a, &SymbolicOptions::default());
    let ap = a.permute(&sym.perm);
    (sym, ap)
}

/// Both parallel engines against their serial counterparts at 1e-11.
fn check_matches_serial(a: &SymCsc, label: &str) {
    let (sym, ap) = prepared(a);
    let rl = factor_rl_cpu(&sym, &ap).unwrap();
    let rlb = factor_rlb_cpu(&sym, &ap).unwrap();
    for threads in THREAD_SWEEP {
        let rl_par = factor_rl_cpu_par(&sym, &ap, threads).unwrap();
        let d = rl.factor.max_rel_diff(&rl_par.factor);
        assert!(d < 1e-11, "{label}: RL threads={threads} diff {d}");
        let rlb_par = factor_rlb_cpu_par(&sym, &ap, threads).unwrap();
        let d = rlb.factor.max_rel_diff(&rlb_par.factor);
        assert!(d < 1e-11, "{label}: RLB threads={threads} diff {d}");
    }
}

#[test]
fn parallel_matches_serial_on_laplace2d() {
    check_matches_serial(&laplace2d(20, 7), "laplace2d(20)");
}

#[test]
fn parallel_matches_serial_on_grid3d() {
    check_matches_serial(&grid3d(8, 8, 8, Stencil::Star7, 1, 13), "grid3d(8^3)");
}

/// A tridiagonal chain: the elimination tree is a single path (tall and
/// skinny), so almost no two supernodes are ever ready together — the
/// scheduler must degrade to (correct) serial execution.
#[test]
fn parallel_matches_serial_on_tall_skinny_tree() {
    let n = 400;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, 4.0);
        if j + 1 < n {
            t.push(j + 1, j, -1.0);
        }
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    // Natural order keeps the chain a chain (ND would bisect it).
    let (sym, ap) = prepared(&a);
    // The merged supernodal etree of a chain is (almost) a path: every
    // supernode has at most one child.
    let nsup = sym.nsup();
    let mut children = vec![0usize; nsup];
    for s in 0..nsup {
        let p = sym.sn_parent[s];
        if p != rlchol::symbolic::NONE {
            children[p] += 1;
        }
    }
    assert!(
        children.iter().filter(|&&c| c > 1).count() <= nsup / 8,
        "chain should produce a path-like supernodal tree"
    );
    check_matches_serial(&a, "tridiagonal chain");
    let _ = ap;
}

/// A forest of disconnected small grids: every tree root is independent,
/// so the ready queue is wide from the start (bushy) and all lanes fill
/// immediately.
#[test]
fn parallel_matches_serial_on_wide_bushy_forest() {
    let (blocks, k) = (12usize, 6usize);
    let bn = k * k;
    let mut t = TripletMatrix::new(blocks * bn, blocks * bn);
    for b in 0..blocks {
        let base = b * bn;
        for y in 0..k {
            for x in 0..k {
                let v = base + y * k + x;
                t.push(v, v, 4.0 + (b % 3) as f64);
                if x + 1 < k {
                    t.push(v + 1, v, -1.0);
                }
                if y + 1 < k {
                    t.push(v + k, v, -1.0);
                }
            }
        }
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    let (sym, _) = prepared(&a);
    // A forest: at least `blocks` independent roots.
    let roots = (0..sym.nsup())
        .filter(|&s| sym.sn_parent[s] == rlchol::symbolic::NONE)
        .count();
    assert!(
        roots >= blocks,
        "expected a bushy forest, got {roots} roots"
    );
    check_matches_serial(&a, "disconnected grids");
}

/// A non-positive-definite pivot must propagate out of the worker pool as
/// a clean error — no deadlock, no poisoned state — and leave the
/// scheduler usable for the next factorization.
#[test]
fn indefinite_matrix_errors_cleanly_in_parallel() {
    let n = 120;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        // A strongly negative diagonal entry mid-chain breaks positive
        // definiteness partway through the factorization.
        t.push(j, j, if j == 61 { -50.0 } else { 4.0 });
        if j + 1 < n {
            t.push(j + 1, j, -1.0);
        }
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    let (sym, ap) = prepared(&a);
    assert!(matches!(
        factor_rl_cpu(&sym, &ap),
        Err(FactorError::NotPositiveDefinite { .. })
    ));
    for threads in THREAD_SWEEP {
        assert!(
            matches!(
                factor_rlb_cpu_par(&sym, &ap, threads),
                Err(FactorError::NotPositiveDefinite { .. })
            ),
            "RLB threads={threads}"
        );
        assert!(
            matches!(
                factor_rl_cpu_par(&sym, &ap, threads),
                Err(FactorError::NotPositiveDefinite { .. })
            ),
            "RL threads={threads}"
        );
    }
    // The pool survives the failed batches: a healthy factorization
    // still succeeds afterwards.
    let good = laplace2d(10, 3);
    let (gs, gap) = prepared(&good);
    assert!(factor_rlb_cpu_par(&gs, &gap, 4).is_ok());
}

/// The solver pipeline accepts the parallel methods end to end.
#[test]
fn solver_pipeline_with_parallel_methods() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 42);
    let n = a.n();
    let x_true: Vec<f64> = (0..n).map(|i| (i % 9) as f64 - 4.0).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x_true, &mut b);
    for method in [Method::RlCpuPar, Method::RlbCpuPar] {
        for threads in [0, 4] {
            let opts = SolverOptions {
                method,
                threads,
                ..SolverOptions::default()
            };
            let solver = CholeskySolver::factor(&a, &opts).unwrap();
            let x = solver.solve(&b);
            let err = x
                .iter()
                .zip(&x_true)
                .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
            assert!(err < 1e-8, "{method:?} threads={threads}: error {err}");
        }
    }
}
