//! Bit-identity of the thread-parallel symbolic analysis.
//!
//! The contract under test: `analyze_threads` (the option, the
//! `RLCHOL_ANALYZE_THREADS` lane count, or the pool default) may change
//! only the analyze *wall clock* — never a single bit of the analysis.
//! Per generated `(pattern, ordering)` case:
//!
//! 1. `rlchol_symbolic::analyze_par` at 2/4/8 threads equals the serial
//!    `analyze` **exactly** (full `SymbolicFactor` comparison: counts,
//!    supernode partition, rows, relative-index blocks, permutation,
//!    stats).
//! 2. A `SymbolicCholesky` handle built with `analyze_threads` 2/4/8 is
//!    `analysis_eq` to the serial handle: symbolic factor, composed
//!    permutation, solve plan, value map and analyzed pattern all equal.
//! 3. The analysis is engine-independent: every registered engine's
//!    handle carries the identical analysis.
//! 4. Numeric smoke: a factor through a parallel-analyzed handle is
//!    bitwise the serial-analyzed handle's factor.
//!
//! A separate stress leg analyzes concurrently from eight threads — the
//! pool is shared and nested submission degrades to inline execution,
//! which must not change results either.

use proptest::prelude::*;

use rlchol::symbolic::{analyze, analyze_par, SymbolicOptions};
use rlchol::{
    CholeskySolver, Method, OrderingMethod, SolverOptions, SymCsc, SymbolicCholesky, TripletMatrix,
};

const ORDERINGS: [OrderingMethod; 4] = [
    OrderingMethod::NestedDissection,
    OrderingMethod::MinDegree,
    OrderingMethod::Rcm,
    OrderingMethod::Natural,
];

/// Deterministic value stream (the shim's SplitMix64).
struct Vals(TestRng);

impl Vals {
    fn new(seed: u64) -> Self {
        Vals(TestRng::for_case(seed))
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.0.next_f64()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.0.next_u64() % n as u64) as usize
    }
}

/// Random SPD pattern: connected, `extra` off-diagonals per column,
/// strictly diagonally dominant values.
fn random_spd(n: usize, extra: usize, vals: &mut Vals) -> SymCsc {
    let mut t = TripletMatrix::new(n, n);
    let mut present = std::collections::HashSet::new();
    let mut offdiag = Vec::new();
    for i in 1..n {
        let j = vals.index(i);
        if present.insert((i, j)) {
            offdiag.push((i, j, vals.in_range(-1.0, 1.0)));
        }
    }
    for j in 0..n.saturating_sub(1) {
        for _ in 0..extra {
            let i = j + 1 + vals.index(n - 1 - j);
            if present.insert((i, j)) {
                offdiag.push((i, j, vals.in_range(-1.0, 1.0)));
            }
        }
    }
    let mut dom = vec![0.0f64; n];
    for &(i, j, v) in &offdiag {
        dom[i] += v.abs();
        dom[j] += v.abs();
        t.push(i, j, v);
    }
    for (j, d) in dom.iter().enumerate() {
        t.push(j, j, 1.0 + d + vals.in_range(0.0, 1.0));
    }
    SymCsc::from_lower_triplets(&t).expect("valid triplets")
}

fn opts(ordering: OrderingMethod, analyze_threads: usize) -> SolverOptions {
    SolverOptions {
        ordering,
        analyze_threads,
        ..SolverOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_analysis_is_bit_identical_for_every_ordering(
        n in 4usize..40,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut vals = Vals::new(seed);
        let a = random_spd(n, extra, &mut vals);

        for ordering in ORDERINGS {
            // Symbolic layer: analyze_par ≡ analyze, full struct.
            let fill = rlchol::ordering::order(&a, ordering);
            let af = a.permute(&fill);
            let serial_sym = analyze(&af, &SymbolicOptions::default());
            for threads in [1usize, 2, 4, 8] {
                prop_assert_eq!(
                    &analyze_par(&af, &SymbolicOptions::default(), threads),
                    &serial_sym,
                    "analyze_par diverged ({:?}, n={}, threads={}, seed={})",
                    ordering, n, threads, seed
                );
            }

            // Handle layer: plan + value map + permutation all equal.
            let serial = SymbolicCholesky::new(&a, &opts(ordering, 1));
            for threads in [2usize, 4, 8] {
                let par = SymbolicCholesky::new(&a, &opts(ordering, threads));
                prop_assert!(
                    par.analysis_eq(&serial),
                    "handle analysis diverged ({:?}, n={}, threads={}, seed={})",
                    ordering, n, threads, seed
                );
            }
        }
    }
}

#[test]
fn analysis_is_engine_independent_and_factors_bitwise() {
    let mut vals = Vals::new(0x5eed);
    let a = random_spd(60, 3, &mut vals);
    let serial = SymbolicCholesky::new(&a, &opts(OrderingMethod::NestedDissection, 1));
    let serial_fact = serial.factor_with(&a).expect("SPD input");
    for method in Method::ALL {
        let par = SymbolicCholesky::new(
            &a,
            &SolverOptions {
                method,
                ..opts(OrderingMethod::NestedDissection, 4)
            },
        );
        assert!(
            par.analysis_eq(&serial),
            "{method:?}: engine choice leaked into the analysis"
        );
    }
    // Numeric smoke: the default engine's factor through a
    // parallel-analyzed handle is bitwise the serial-analyzed one.
    let par = SymbolicCholesky::new(&a, &opts(OrderingMethod::NestedDissection, 8));
    let par_fact = par.factor_with(&a).expect("SPD input");
    assert_eq!(
        par_fact.data(),
        serial_fact.data(),
        "factor values depend on the analyze lane count"
    );
}

#[test]
fn concurrent_analyses_from_many_threads_stay_bit_identical() {
    let mut vals = Vals::new(0xc0ffee);
    let a = random_spd(80, 2, &mut vals);
    let serial = std::sync::Arc::new(SymbolicCholesky::new(
        &a,
        &opts(OrderingMethod::NestedDissection, 1),
    ));
    std::thread::scope(|s| {
        for t in 0..8 {
            let a = &a;
            let serial = std::sync::Arc::clone(&serial);
            s.spawn(move || {
                // Mixed lane counts, all racing on the shared pool.
                let threads = [1usize, 2, 4, 8][t % 4];
                let par =
                    SymbolicCholesky::new(a, &opts(OrderingMethod::NestedDissection, threads));
                assert!(
                    par.analysis_eq(&serial),
                    "concurrent analysis (worker {t}, threads {threads}) diverged"
                );
            });
        }
    });
}

#[test]
fn oneshot_analyze_honours_the_option() {
    // CholeskySolver::analyze is the public front door; make sure the
    // option flows through and is reported back in the breakdown.
    let mut vals = Vals::new(7);
    let a = random_spd(50, 2, &mut vals);
    let h = CholeskySolver::analyze(&a, &opts(OrderingMethod::MinDegree, 4));
    assert_eq!(h.analyze_breakdown().threads, 4);
    let serial = CholeskySolver::analyze(&a, &opts(OrderingMethod::MinDegree, 1));
    assert_eq!(serial.analyze_breakdown().threads, 1);
    assert!(h.analysis_eq(&serial));
}
