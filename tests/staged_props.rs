//! Property tests for the staged API on the proptest shim: random small
//! SPD patterns × every registered engine.
//!
//! Invariants, per generated `(pattern, values)` case and [`Method`]:
//!
//! 1. `factor_with` on a [`SymbolicCholesky`] handle is **bitwise**
//!    identical to the one-shot `CholeskySolver::factor` path.
//! 2. `refactor` with a second value set is bitwise identical to a fresh
//!    `factor_with` of that set (storage reuse never changes values).
//! 3. A wrong-pattern input — an entry toggled, or a different
//!    dimension — always yields [`FactorError::PatternMismatch`] and
//!    leaves the previous factor untouched; it can never produce a
//!    silently wrong factor.
//! 4. Solving after a refactor round-trips: `x` recovered from
//!    `b = A₂ x` within a tight tolerance (the generated systems are
//!    strictly diagonally dominant, hence well conditioned).
//!
//! The task-parallel engines pin to one lane for the bitwise sweeps
//! (nondeterministic fan-out order at >1 lane changes roundoff, see
//! tests/refactor.rs); the GPU engines run with threshold 0 so even
//! these small supernodes exercise the device path.

use proptest::prelude::*;

use rlchol::{
    CholeskySolver, FactorError, GpuOptions, Method, SolveWorkspace, SolverOptions, SymCsc,
    TripletMatrix,
};

/// Deterministic value stream for matrix construction (the shim's
/// SplitMix64, seeded from the strategy-drawn case seed).
struct Vals(TestRng);

impl Vals {
    fn new(seed: u64) -> Self {
        Vals(TestRng::for_case(seed))
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.0.next_f64()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.0.next_u64() % n as u64) as usize
    }
}

/// A random lower-triangular SPD pattern: `n` diagonal entries plus
/// `extra` off-diagonal entries per column (deduplicated), with values
/// made strictly diagonally dominant.
fn random_spd(n: usize, extra: usize, vals: &mut Vals) -> SymCsc {
    let mut t = TripletMatrix::new(n, n);
    let mut present = std::collections::HashSet::new();
    let mut offdiag = Vec::new();
    for j in 0..n.saturating_sub(1) {
        for _ in 0..extra {
            let i = j + 1 + vals.index(n - 1 - j);
            if present.insert((i, j)) {
                offdiag.push((i, j, vals.in_range(-1.0, 1.0)));
            }
        }
    }
    // Dominance: diag(j) > Σ |offdiag in row j| + |offdiag in col j|.
    let mut dom = vec![0.0f64; n];
    for &(i, j, v) in &offdiag {
        dom[i] += v.abs();
        dom[j] += v.abs();
        t.push(i, j, v);
    }
    for (j, d) in dom.iter().enumerate() {
        t.push(j, j, 1.0 + d + vals.in_range(0.0, 1.0));
    }
    SymCsc::from_lower_triplets(&t).expect("valid triplets")
}

/// A same-pattern clone of `a` with fresh (still dominant) values.
fn reseed_values(a: &SymCsc, vals: &mut Vals) -> SymCsc {
    let mut b = a.clone();
    let n = b.n();
    let mut dom = vec![0.0f64; n];
    let mut diag_pos = Vec::with_capacity(n);
    {
        let colptr = b.colptr().to_vec();
        let rowind = b.rowind().to_vec();
        let values = b.values_mut();
        for j in 0..n {
            for p in colptr[j]..colptr[j + 1] {
                let i = rowind[p];
                if i == j {
                    diag_pos.push(p);
                } else {
                    let v = vals.in_range(-1.0, 1.0);
                    values[p] = v;
                    dom[i] += v.abs();
                    dom[j] += v.abs();
                }
            }
        }
        for (j, &p) in diag_pos.iter().enumerate() {
            values[p] = 1.0 + dom[j] + vals.in_range(0.0, 1.0);
        }
    }
    b
}

/// A minimally perturbed pattern: one extra off-diagonal entry when
/// possible, otherwise one dropped entry — same dimension, same or
/// nearly same nnz, different structure.
fn perturbed_pattern(a: &SymCsc, vals: &mut Vals) -> SymCsc {
    let n = a.n();
    let mut t = TripletMatrix::new(n, n);
    let mut entries = Vec::new();
    for j in 0..n {
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
            entries.push((i, j, v));
        }
    }
    // Find a missing off-diagonal slot to add.
    let mut added = false;
    'outer: for j in 0..n.saturating_sub(1) {
        for i in j + 1..n {
            if a.col_rows(j).binary_search(&i).is_err() {
                entries.push((i, j, vals.in_range(-0.5, 0.5)));
                added = true;
                break 'outer;
            }
        }
    }
    if !added {
        // Fully dense lower triangle: drop one off-diagonal instead.
        let pos = entries
            .iter()
            .position(|&(i, j, _)| i != j)
            .expect("n >= 2 dense triangle has off-diagonals");
        entries.swap_remove(pos);
    }
    for (i, j, v) in entries {
        t.push(i, j, v);
    }
    SymCsc::from_lower_triplets(&t).expect("valid triplets")
}

fn opts_for(method: Method) -> SolverOptions {
    let threshold = if method.is_gpu() { 0 } else { usize::MAX };
    let threads = match method {
        Method::RlCpuPar | Method::RlbCpuPar => 1,
        _ => 0,
    };
    SolverOptions {
        method,
        gpu: GpuOptions::with_threshold(threshold),
        threads,
        factor_lanes: 2,
        ..SolverOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn staged_api_invariants_hold_for_every_engine(
        n in 3usize..24,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut vals = Vals::new(seed);
        let a0 = random_spd(n, extra, &mut vals);
        let a1 = reseed_values(&a0, &mut vals);
        let wrong = perturbed_pattern(&a0, &mut vals);
        let bigger = random_spd(n + 1, extra, &mut vals);

        for method in Method::ALL {
            let opts = opts_for(method);
            let handle = CholeskySolver::analyze(&a0, &opts);

            // 1. factor_with ≡ one-shot, bitwise.
            let mut fact = handle.factor_with(&a0).expect("SPD input");
            let one_shot = CholeskySolver::factor(&a0, &opts).expect("SPD input");
            prop_assert_eq!(
                fact.data(), one_shot.factor_data(),
                "{:?}: staged factor differs from one-shot (n={}, seed={})",
                method, n, seed
            );

            // 2. refactor ≡ factor_with on the second value set, bitwise.
            handle.refactor(&mut fact, &a1).expect("SPD values");
            let direct = handle.factor_with(&a1).expect("SPD values");
            prop_assert_eq!(
                fact.data(), direct.data(),
                "{:?}: refactor differs from factor_with (n={}, seed={})",
                method, n, seed
            );

            // 3. Wrong patterns are typed rejections, never wrong factors.
            let before = fact.data().clone();
            for bad in [&wrong, &bigger] {
                prop_assert!(
                    matches!(handle.factor_with(bad), Err(FactorError::PatternMismatch { .. })),
                    "{:?}: wrong pattern must be rejected", method
                );
                prop_assert!(
                    matches!(handle.refactor(&mut fact, bad), Err(FactorError::PatternMismatch { .. })),
                    "{:?}: wrong pattern must be rejected on refactor", method
                );
                prop_assert_eq!(
                    fact.data(), &before,
                    "{:?}: rejected refactor must leave the factor untouched", method
                );
            }

            // 4. Solve after refactor round-trips on the current values.
            let x_true: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
            let mut b = vec![0.0; n];
            a1.matvec(&x_true, &mut b);
            let mut x = vec![0.0; n];
            let mut ws = SolveWorkspace::warm(n, 1);
            handle.solve_into(&fact, &b, &mut x, &mut ws).expect("sized buffers");
            for i in 0..n {
                prop_assert!(
                    (x[i] - x_true[i]).abs() < 1e-8,
                    "{:?}: solve-after-refactor entry {} off by {} (n={}, seed={})",
                    method, i, (x[i] - x_true[i]).abs(), n, seed
                );
            }
        }
    }
}
