//! Property-based tests over the whole stack: random SPD matrices through
//! ordering, symbolic analysis and numeric factorization.

use proptest::prelude::*;
use rlchol::core::engine::Method;
use rlchol::sparse::{Permutation, SymCsc, TripletMatrix};
use rlchol::symbolic::{analyze, SymbolicOptions};
use rlchol::{CholeskySolver, SolverOptions};

/// Strategy: a connected random SPD matrix of dimension 2..40.
fn arb_spd() -> impl Strategy<Value = SymCsc> {
    (2usize..40, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic xorshift edges: a spanning path plus extras.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = TripletMatrix::new(n, n);
        let mut diag = vec![1.0f64; n];
        let add_edge = |t: &mut TripletMatrix, diag: &mut Vec<f64>, i: usize, j: usize| {
            if i == j {
                return;
            }
            let (r, c) = (i.max(j), i.min(j));
            let v = -0.5;
            t.push(r, c, v);
            diag[r] += 0.5;
            diag[c] += 0.5;
        };
        for i in 1..n {
            add_edge(&mut t, &mut diag, i, (next() as usize) % i);
        }
        for _ in 0..n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            add_edge(&mut t, &mut diag, a, b);
        }
        for (j, &d) in diag.iter().enumerate() {
            t.push(j, j, d + 0.25);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_inverts_matvec(a in arb_spd()) {
        let solver = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let x = solver.solve(&b);
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-7,
                "entry {} off by {}", i, (x[i] - x_true[i]).abs());
        }
    }

    #[test]
    fn symbolic_structure_invariants(a in arb_spd()) {
        let sym = analyze(&a, &SymbolicOptions::default());
        sym.validate().unwrap();
        // Permutation is a bijection and the partition covers all columns.
        prop_assert_eq!(sym.perm.len(), a.n());
        prop_assert_eq!(sym.sn.n(), a.n());
        // Factor nnz is at least A's lower nnz (no lost entries).
        prop_assert!(sym.nnz >= a.nnz_lower() as u64);
        // Block decomposition covers each supernode's rows exactly.
        for s in 0..sym.nsup() {
            let covered: usize = sym.blocks[s].iter().map(|b| b.len).sum();
            prop_assert_eq!(covered, sym.rows[s].len());
        }
        // Partition refinement never makes the block structure worse
        // (the monotonicity guard in rlchol-symbolic::pr).
        prop_assert!(sym.stats.blocks_after_pr <= sym.stats.blocks_before_pr);
    }

    #[test]
    fn merging_respects_cap(a in arb_spd()) {
        let plain = analyze(&a, &SymbolicOptions {
            merge: false, partition_refine: false, ..SymbolicOptions::default()
        });
        let merged = analyze(&a, &SymbolicOptions {
            merge: true, merge_growth_cap: 0.25, partition_refine: false,
            ..SymbolicOptions::default()
        });
        prop_assert!(merged.nsup() <= plain.nsup());
        // Storage growth bounded by the cap (+1 entry of rounding slack).
        prop_assert!(merged.nnz as f64 <= plain.nnz as f64 * 1.25 + 1.0,
            "{} vs {}", merged.nnz, plain.nnz);
    }

    #[test]
    fn rl_and_rlb_agree(a in arb_spd()) {
        let mk = |method| {
            let opts = SolverOptions { method, ..SolverOptions::default() };
            CholeskySolver::factor(&a, &opts).unwrap()
        };
        let rl = mk(Method::RlCpu);
        let rlb = mk(Method::RlbCpu);
        let d = rl.factor_data().max_rel_diff(rlb.factor_data());
        prop_assert!(d < 1e-10, "factors differ by {}", d);
    }

    #[test]
    fn permutation_roundtrip(a in arb_spd()) {
        let sym = analyze(&a, &SymbolicOptions::default());
        let p: &Permutation = &sym.perm;
        let ap = a.permute(p);
        for j in 0..a.n() {
            prop_assert_eq!(ap.get(p.new_of(j), p.new_of(j)), a.get(j, j));
        }
        // Frobenius norm is permutation-invariant.
        prop_assert!((ap.norm_fro() - a.norm_fro()).abs() < 1e-9);
    }
}
