//! Allocation accounting for the staged solve path: after warm-up,
//! `solve_into`, `solve_many` and `solve_refined` must perform **zero**
//! heap allocations per call. Enforced with a counting global
//! allocator, so a regression that sneaks a `Vec` into the hot path
//! fails loudly.
//!
//! The counting allocator is per-binary, so this file holds exactly one
//! test (the harness runs tests in parallel threads; a second test's
//! allocations would race the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, SolveWorkspace, SolverOptions};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns the allocation count.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn solves_are_allocation_free_after_warm_up() {
    let a = grid3d(6, 5, 4, Stencil::Star7, 1, 11);
    let n = a.n();
    let k = 3;
    let handle = CholeskySolver::analyze(&a, &SolverOptions::default());
    let fact = handle.factor_with(&a).expect("SPD input");

    let b: Vec<f64> = (0..n * k).map(|i| ((i * 17) % 41) as f64 - 20.0).collect();
    let mut x = vec![0.0; n];
    let mut xs = vec![0.0; n * k];
    let mut ws = SolveWorkspace::new();

    // Warm-up: the workspace buffers grow to their steady-state sizes.
    handle.solve_into(&fact, &b[..n], &mut x, &mut ws);
    handle.solve_many(&fact, &b, &mut xs, k, &mut ws);
    handle.solve_refined(&fact, &a, &b[..n], &mut x, 2, &mut ws);

    // Steady state: repeated solves must not touch the heap.
    let allocs = count_allocs(|| {
        for _ in 0..5 {
            handle.solve_into(&fact, &b[..n], &mut x, &mut ws);
            handle.solve_many(&fact, &b, &mut xs, k, &mut ws);
            handle.solve_refined(&fact, &a, &b[..n], &mut x, 2, &mut ws);
        }
    });
    assert_eq!(
        allocs, 0,
        "solve path allocated {allocs} times after warm-up"
    );

    // And a workspace pre-grown with `warm` is allocation-free from the
    // very first call.
    let mut warm_ws = SolveWorkspace::warm(n, k);
    let allocs = count_allocs(|| {
        handle.solve_into(&fact, &b[..n], &mut x, &mut warm_ws);
        handle.solve_many(&fact, &b, &mut xs, k, &mut warm_ws);
    });
    assert_eq!(
        allocs, 0,
        "warm workspace allocated {allocs} times on first use"
    );
}
