//! Allocation accounting for the staged hot paths: after warm-up,
//! `solve_into`, `solve_many` and `solve_refined` must perform **zero**
//! heap allocations per call — and so must a `factor_with` + `recycle`
//! serving loop through a warm workspace lane (lane checkout/return,
//! recycled factor storage, recycled trace buffer, RLB's in-place
//! update sweep). Enforced with a counting global allocator, so a
//! regression that sneaks a `Vec` into a hot path fails loudly.
//!
//! The counting allocator is per-binary, so this file holds exactly one
//! test (the harness runs tests in parallel threads; a second test's
//! allocations would race the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, SolveWorkspace, SolverOptions};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns the allocation count.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Asserts `f` performs zero heap allocations, retrying up to three
/// attempts. The counter is process-global, so rare allocations from
/// runtime/harness threads can land inside a counted window on a loaded
/// single-CPU host; those are transient across attempts, while a real
/// hot-path allocation recurs on every one.
fn assert_alloc_free(label: &str, mut f: impl FnMut()) {
    let mut allocs = 0;
    for _ in 0..3 {
        allocs = count_allocs(&mut f);
        if allocs == 0 {
            return;
        }
    }
    panic!("{label} allocated {allocs} times after warm-up");
}

/// Lets freshly spawned pool workers finish their one-time thread
/// startup (which allocates) before counting begins. On a single-CPU
/// host the children may not have been scheduled at all until the main
/// thread yields, so a plain warm-up call is not enough.
fn settle_pool() {
    if rlchol::dense::pool::global().threads() > 1 {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

#[test]
fn solves_are_allocation_free_after_warm_up() {
    let a = grid3d(6, 5, 4, Stencil::Star7, 1, 11);
    let n = a.n();
    let k = 3;
    let handle = CholeskySolver::analyze(&a, &SolverOptions::default());
    let fact = handle.factor_with(&a).expect("SPD input");

    let b: Vec<f64> = (0..n * k).map(|i| ((i * 17) % 41) as f64 - 20.0).collect();
    let mut x = vec![0.0; n];
    let mut xs = vec![0.0; n * k];
    let mut ws = SolveWorkspace::new();

    // Warm-up: the workspace buffers grow to their steady-state sizes.
    handle.solve_into(&fact, &b[..n], &mut x, &mut ws).unwrap();
    handle.solve_many(&fact, &b, &mut xs, k, &mut ws).unwrap();
    handle
        .solve_refined(&fact, &a, &b[..n], &mut x, 2, &mut ws)
        .unwrap();
    settle_pool();

    // Steady state: repeated solves must not touch the heap.
    assert_alloc_free("solve path", || {
        for _ in 0..5 {
            handle.solve_into(&fact, &b[..n], &mut x, &mut ws).unwrap();
            handle.solve_many(&fact, &b, &mut xs, k, &mut ws).unwrap();
            handle
                .solve_refined(&fact, &a, &b[..n], &mut x, 2, &mut ws)
                .unwrap();
        }
    });

    // And a workspace pre-grown with `warm` is allocation-free from the
    // very first call. A fresh workspace per attempt, so a retry still
    // exercises the first-use path (an under-sized `warm` would grow on
    // attempt one and pass warmed-up otherwise).
    let mut attempts = 0;
    let allocs = loop {
        let mut warm_ws = SolveWorkspace::warm(n, k);
        let counted = count_allocs(|| {
            handle
                .solve_into(&fact, &b[..n], &mut x, &mut warm_ws)
                .unwrap();
            handle
                .solve_many(&fact, &b, &mut xs, k, &mut warm_ws)
                .unwrap();
        });
        attempts += 1;
        if counted == 0 || attempts == 3 {
            break counted;
        }
    };
    assert_eq!(
        allocs, 0,
        "warm workspace allocated {allocs} times on first use"
    );

    // The level-set (tree-parallel) solve path must be equally
    // allocation-free: chunks come from the plan's precomputed prefix
    // sums and the pool's `run_for` parallel-for never boxes a task.
    let a_par = grid3d(8, 8, 6, Stencil::Star7, 1, 12);
    let n_par = a_par.n();
    let handle_par = CholeskySolver::analyze(
        &a_par,
        &SolverOptions {
            solve_threads: 4,
            ..SolverOptions::default()
        },
    );
    let info = handle_par.solve_info();
    assert!(
        info.level_set && info.max_width > 1,
        "test matrix must engage the level-set path (got {info:?})"
    );
    let fact_par = handle_par.factor_with(&a_par).expect("SPD input");
    let bp: Vec<f64> = (0..n_par * k)
        .map(|i| ((i * 7) % 43) as f64 - 21.0)
        .collect();
    let mut xp = vec![0.0; n_par];
    let mut xsp = vec![0.0; n_par * k];
    let mut ws_par = SolveWorkspace::new();
    // Warm-up also spawns the pool's workers on first use.
    handle_par
        .solve_into(&fact_par, &bp[..n_par], &mut xp, &mut ws_par)
        .unwrap();
    handle_par
        .solve_many(&fact_par, &bp, &mut xsp, k, &mut ws_par)
        .unwrap();
    handle_par
        .solve_refined(&fact_par, &a_par, &bp[..n_par], &mut xp, 2, &mut ws_par)
        .unwrap();
    settle_pool();
    assert_alloc_free("level-set solve path", || {
        for _ in 0..5 {
            handle_par
                .solve_into(&fact_par, &bp[..n_par], &mut xp, &mut ws_par)
                .unwrap();
            handle_par
                .solve_many(&fact_par, &bp, &mut xsp, k, &mut ws_par)
                .unwrap();
            handle_par
                .solve_refined(&fact_par, &a_par, &bp[..n_par], &mut xp, 2, &mut ws_par)
                .unwrap();
        }
    });

    // Lane-pooled factorization: a factor_with/recycle serving loop on a
    // warm lane must not touch the heap either. RLB applies updates
    // directly into factor storage (no workspace growth), the lane's
    // recycle bins return the factor storage and trace buffer, and lane
    // checkout/return is a free-list pop/push — so after one warm-up
    // round the loop is allocation-free end to end.
    let a_rlb = grid3d(5, 5, 4, Stencil::Star7, 1, 13);
    let handle_rlb = CholeskySolver::analyze(
        &a_rlb,
        &SolverOptions {
            method: rlchol::Method::RlbCpu,
            factor_lanes: 2,
            ..SolverOptions::default()
        },
    );
    // Warm-up: creates the lane, grows engine scratch and the GEMM
    // packing buffers, seeds the recycle bins.
    let warm = handle_rlb.factor_with(&a_rlb).expect("SPD input");
    handle_rlb.recycle(warm);
    let warm = handle_rlb.factor_with(&a_rlb).expect("SPD input");
    handle_rlb.recycle(warm);
    settle_pool();
    assert_alloc_free("lane-pooled factor_with", || {
        for _ in 0..5 {
            let fact = handle_rlb.factor_with(&a_rlb).expect("SPD input");
            handle_rlb.recycle(fact);
        }
    });
    let stats = handle_rlb.lane_stats();
    assert_eq!(
        (stats.created, stats.in_use),
        (1, 0),
        "a serial serving loop reuses one lane: {stats:?}"
    );

    // refactor through the same lane pool is equally allocation-free
    // (storage recycles through the factorization itself).
    let mut fact = handle_rlb.factor_with(&a_rlb).expect("SPD input");
    handle_rlb.refactor(&mut fact, &a_rlb).expect("SPD values");
    settle_pool();
    assert_alloc_free("lane-pooled refactor", || {
        for _ in 0..5 {
            handle_rlb.refactor(&mut fact, &a_rlb).expect("SPD values");
        }
    });

    // Analyze path: repeated analyses on a warm process allocate a
    // bounded, *stable* amount per call — analysis inherently builds
    // its structures on the heap, but the count must not creep from
    // call to call (a creep means some cache, pool queue, or
    // thread-local is growing without bound under analyze churn). The
    // parallel pipeline is the interesting case: it boxes pool tasks
    // and per-thread scratch on every call.
    let a_an = grid3d(6, 6, 5, Stencil::Star7, 1, 14);
    let opts_an = SolverOptions {
        analyze_threads: 4,
        ..SolverOptions::default()
    };
    let analyze_once = || {
        let h = CholeskySolver::analyze(&a_an, &opts_an);
        std::hint::black_box(&h);
    };
    // Warm-up settles one-time lazies (ordering scratch, pool state).
    analyze_once();
    settle_pool();
    let baseline = (0..3)
        .map(|_| count_allocs(analyze_once))
        .min()
        .expect("three baseline runs");
    assert!(baseline > 0, "analysis allocates its structures");
    // Same retry idiom as the zero-alloc sections: harness threads can
    // leak stray allocations into one window on a loaded host, but a
    // real per-call creep recurs on every attempt.
    let bound = baseline + baseline / 4 + 16;
    let mut last = 0;
    let mut stable = false;
    for _ in 0..3 {
        last = count_allocs(analyze_once);
        if last <= bound {
            stable = true;
            break;
        }
    }
    assert!(
        stable,
        "warm-process analyze allocations crept: {last} vs baseline {baseline} (bound {bound})"
    );
}
