//! Integration tests of the simulated GPU runtime semantics as the
//! engines use them: overlap accounting, memory pressure, hybrid
//! dispatch, and the timeline invariants the tables rely on.

use rlchol::core::engine::GpuOptions;
use rlchol::core::gpu_rl::factor_rl_gpu;
use rlchol::core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol::gpu::Gpu;
use rlchol::matgen::{grid3d, Stencil};
use rlchol::ordering::{order, OrderingMethod};
use rlchol::perfmodel::{perlmutter_gpu, MachineModel, TraceOp};
use rlchol::symbolic::{analyze, SymbolicFactor, SymbolicOptions};

fn setup() -> (SymbolicFactor, rlchol::SymCsc) {
    let a = grid3d(7, 7, 6, Stencil::Star7, 1, 55);
    let fill = order(&a, OrderingMethod::NestedDissection);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let afact = af.permute(&sym.perm);
    (sym, afact)
}

fn opts(threshold: usize) -> GpuOptions {
    GpuOptions {
        machine: MachineModel::perlmutter(64).scale_compute(24.0),
        threshold,
        overlap: true,
        streams: 0,
        assign: None,
        faults: None,
        retire: None,
        lookahead: None,
    }
}

#[test]
fn sim_time_dominates_component_sums_under_overlap() {
    let (sym, afact) = setup();
    let run = factor_rl_gpu(&sym, &afact, &opts(0)).unwrap();
    // With overlap, total <= kernels + transfers + host (strictly less
    // when any copy-back overlaps host work), and total >= each part.
    let parts = run.stats.kernel_seconds + run.stats.transfer_seconds + run.stats.host_seconds;
    assert!(run.sim_seconds <= parts + 1e-12);
    assert!(run.sim_seconds >= run.stats.kernel_seconds);
    assert!(run.sim_seconds >= run.stats.host_seconds);
}

#[test]
fn blocking_mode_serializes_to_the_component_sum() {
    let (sym, afact) = setup();
    let mut o = opts(0);
    o.overlap = false;
    let run = factor_rl_gpu(&sym, &afact, &o).unwrap();
    let parts = run.stats.kernel_seconds + run.stats.transfer_seconds + run.stats.host_seconds;
    assert!(
        (run.sim_seconds - parts).abs() < parts * 1e-9,
        "blocking run should equal the sum of its parts: {} vs {parts}",
        run.sim_seconds
    );
}

#[test]
fn offloading_moves_bytes_proportionally() {
    let (sym, afact) = setup();
    let all = factor_rl_gpu(&sym, &afact, &opts(0)).unwrap();
    let none = factor_rl_gpu(&sym, &afact, &opts(usize::MAX)).unwrap();
    assert!(all.stats.total_transfer_bytes() > 0);
    assert_eq!(none.stats.total_transfer_bytes(), 0);
    assert_eq!(none.stats.kernel_launches, 0);
    // Hybrid sits between.
    let some = factor_rl_gpu(&sym, &afact, &opts(2_000)).unwrap();
    assert!(some.stats.total_transfer_bytes() < all.stats.total_transfer_bytes());
    assert!(some.stats.total_transfer_bytes() > 0);
}

#[test]
fn rl_transfers_more_update_bytes_than_rlb_v2_transfers_in_pieces() {
    let (sym, afact) = setup();
    let rl = factor_rl_gpu(&sym, &afact, &opts(0)).unwrap();
    let v2 = factor_rlb_gpu(&sym, &afact, &opts(0), RlbGpuVersion::V2).unwrap();
    // RL moves whole r x r update matrices; v2 moves only the block
    // strips (lower-triangle coverage) but in many more operations.
    assert!(v2.stats.d2h_count > rl.stats.d2h_count);
    assert!(v2.stats.d2h_bytes <= rl.stats.d2h_bytes);
}

#[test]
fn device_memory_returns_to_zero_after_free() {
    let gpu = Gpu::new(perlmutter_gpu());
    let a = gpu.alloc(1000).unwrap();
    let b = gpu.alloc(500).unwrap();
    assert_eq!(gpu.stats().used_bytes, 1500 * 8);
    gpu.free(a).unwrap();
    gpu.free(b).unwrap();
    assert_eq!(gpu.stats().used_bytes, 0);
    assert_eq!(gpu.stats().peak_bytes, 1500 * 8);
}

#[test]
fn stream_clocks_are_monotone_under_mixed_work() {
    let gpu = Gpu::new(perlmutter_gpu());
    let s = gpu.default_stream();
    let buf = gpu.alloc(64).unwrap();
    let src = vec![1.0; 64];
    let mut prev = 0.0;
    for _ in 0..5 {
        gpu.memcpy_h2d(s, buf, 0, &src).unwrap();
        gpu.host_compute(1e-6);
        let now = gpu.elapsed();
        assert!(now >= prev);
        prev = now;
    }
}

#[test]
fn kernel_cost_model_reflects_shapes() {
    let model = perlmutter_gpu();
    let floor = model.launch_overhead + model.small_kernel_flops / model.peak;
    let small = model.kernel_time(&TraceOp::Syrk { n: 16, k: 16 });
    let large = model.kernel_time(&TraceOp::Syrk { n: 4096, k: 4096 });
    // Every kernel pays at least the small-kernel floor (launch + the
    // MAGMA-like tiny-call inefficiency)...
    assert!(small >= floor && small < 1.05 * floor);
    // ...while the flop term dominates once kernels are large.
    assert!(
        large - floor > 10.0 * floor,
        "large kernels must dominate the floor"
    );
}

#[test]
fn capacity_is_a_hard_invariant_across_engines() {
    let (sym, afact) = setup();
    // Capacity just above what v2 needs: run must stay under it.
    let probe = factor_rlb_gpu(&sym, &afact, &opts(0), RlbGpuVersion::V2).unwrap();
    let cap = probe.stats.peak_bytes + 1024;
    let mut o = opts(0);
    o.machine = MachineModel::perlmutter(64)
        .scale_compute(24.0)
        .with_gpu_capacity(cap);
    let run = factor_rlb_gpu(&sym, &afact, &o, RlbGpuVersion::V2).unwrap();
    assert!(run.stats.peak_bytes <= cap);
}
