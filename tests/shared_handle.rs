//! Concurrency stress for the lane-pooled shared handle: 8 OS threads ×
//! 16 iterations hammering one `Arc<SymbolicCholesky>` with distinct
//! value sets, every produced factor checked **bitwise** against the
//! serial one-shot path.
//!
//! * Every registered engine runs the full hammer at the 8-lane cap; the
//!   contended cap shapes (1 and 2 lanes under 8 threads — checkout
//!   blocking and hand-off) run on a CPU and a pipelined GPU engine.
//! * A non-positive-definite value set is injected mid-stream on one
//!   thread to prove error isolation: that call fails with the typed
//!   error, every other in-flight and subsequent factorization is
//!   unaffected.
//! * The task-parallel CPU engines pin to one pool lane so their
//!   fan-out order (and therefore roundoff) is deterministic — the same
//!   policy as tests/refactor.rs; workspace-lane concurrency on top is
//!   exactly what this file exercises.

use std::collections::HashMap;
use std::sync::Arc;

use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, FactorData, FactorError, GpuOptions, Method, SolverOptions, SymCsc};

const THREADS: usize = 8;
const ITERS: usize = 16;
/// The (thread, iteration) that receives indefinite values.
const BAD_AT: (usize, usize) = (3, 8);

/// Same pattern for every seed; values re-roll per seed.
fn matrix(seed: u64) -> SymCsc {
    grid3d(4, 4, 3, Stencil::Star7, 1, seed)
}

fn value_seed(thread: usize, iter: usize) -> u64 {
    2000 + (thread * ITERS + iter) as u64
}

fn opts_for(method: Method, lanes: usize) -> SolverOptions {
    let threshold = if method.is_gpu() { 200 } else { usize::MAX };
    let threads = match method {
        Method::RlCpuPar | Method::RlbCpuPar => 1,
        _ => 0,
    };
    SolverOptions {
        method,
        gpu: GpuOptions::with_threshold(threshold),
        threads,
        factor_lanes: lanes,
        ..SolverOptions::default()
    }
}

/// Runs the hammer for one engine × lane cap; panics on any mismatch.
/// Returns the pool stats so callers can check timing-dependent
/// counters (contention) with a retry instead of a flaky one-shot.
fn hammer(method: Method, lanes: usize) -> rlchol::LaneStats {
    let opts = opts_for(method, lanes);
    let a0 = matrix(value_seed(0, 0));
    let handle = Arc::new(CholeskySolver::analyze(&a0, &opts));
    assert_eq!(handle.factor_lanes(), lanes);

    // Serial references, one per distinct value set.
    let mut reference: HashMap<u64, FactorData> = HashMap::new();
    for t in 0..THREADS {
        for i in 0..ITERS {
            let seed = value_seed(t, i);
            let fresh = CholeskySolver::factor(&matrix(seed), &opts)
                .unwrap_or_else(|e| panic!("{method:?}: serial reference {seed}: {e}"));
            reference.insert(seed, fresh.factor_data().clone());
        }
    }
    let reference = Arc::new(reference);

    // Indefinite values with the analyzed pattern (negated diagonal).
    let bad = {
        let mut m = matrix(9999);
        let mid = m.n() / 2;
        let dpos = m.colptr()[mid];
        m.values_mut()[dpos] = -75.0;
        m
    };
    let bad = Arc::new(bad);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let handle = Arc::clone(&handle);
            let reference = Arc::clone(&reference);
            let bad = Arc::clone(&bad);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    if (t, i) == BAD_AT {
                        // Error isolation: this lane fails, nothing else.
                        match handle.factor_with(&bad) {
                            Err(FactorError::NotPositiveDefinite { .. })
                            | Err(FactorError::Gpu(_)) => {}
                            r => panic!(
                                "{method:?}: indefinite set must fail with a typed error, got {r:?}"
                            ),
                        }
                        continue;
                    }
                    let seed = value_seed(t, i);
                    let fact = handle
                        .factor_with(&matrix(seed))
                        .unwrap_or_else(|e| panic!("{method:?} t{t} i{i}: {e}"));
                    assert_eq!(
                        fact.data(),
                        &reference[&seed],
                        "{method:?} lanes={lanes} t{t} i{i}: concurrent factor differs from serial"
                    );
                    // Keep the recycle path in the race too.
                    handle.recycle(fact);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("stress worker panicked");
    }

    let stats = handle.lane_stats();
    assert!(
        stats.created <= lanes && stats.peak_in_use <= lanes,
        "{method:?}: pool exceeded its cap: {stats:?}"
    );
    assert_eq!(stats.in_use, 0, "{method:?}: leaked lane: {stats:?}");
    assert_eq!(
        stats.checkouts,
        (THREADS * ITERS) as u64,
        "{method:?}: every factor_with checks out exactly one lane"
    );
    stats
}

#[test]
fn eight_threads_on_one_handle_match_serial_for_every_engine() {
    for method in Method::ALL {
        hammer(method, THREADS);
    }
}

#[test]
fn contended_lane_caps_serialize_without_losing_results() {
    for lanes in [1, 2] {
        for method in [Method::RlCpu, Method::RlbGpuPipe] {
            let stats = hammer(method, lanes);
            if lanes == 1 && stats.contended == 0 {
                // 8 threads over 1 lane virtually always collide, but an
                // oversubscribed test machine can serialize the workers
                // so no checkout ever blocks. The correctness assertions
                // above already ran; re-hammer for the contention signal
                // instead of failing on scheduler timing. On a single
                // hardware thread the tiny factorizations can genuinely
                // never overlap a checkout, so only demand the signal
                // when real parallelism exists.
                let retried = (0..3)
                    .map(|_| hammer(method, lanes))
                    .any(|s| s.contended > 0);
                let single_core = std::thread::available_parallelism().is_ok_and(|p| p.get() == 1);
                assert!(
                    retried || single_core,
                    "{method:?}: 8 threads over 1 lane never contended in 4 runs"
                );
            }
        }
    }
}

#[test]
fn batch_factor_with_pool_reentrant_engine_does_not_deadlock() {
    // The pipelined GPU engine re-enters rlchol_dense::pool from inside
    // a factorization (pooled update assembly). A pool thread waiting
    // there can pop a *sibling batch task* to help out; that nested
    // factor_with must take an overflow lane instead of blocking on the
    // exhausted 1-lane pool — blocking can deadlock (the held lane sits
    // further down the same stack). The timing window is narrow, so the
    // deterministic guard lives in staged::lanes's nested-checkout unit
    // test; this test keeps the full engine × batch × lane-cap-1 shape
    // in CI (including the RLCHOL_THREADS=4 legs) and checks results
    // still match the serial path bitwise.
    let opts = SolverOptions {
        method: Method::RlbGpuPipe,
        gpu: GpuOptions::with_threshold(0),
        factor_lanes: 1,
        ..SolverOptions::default()
    };
    let a0 = matrix(1);
    let handle = CholeskySolver::analyze(&a0, &opts);
    let sets: Vec<SymCsc> = (60..66).map(matrix).collect();
    let refs: Vec<&SymCsc> = sets.iter().collect();
    let results = handle.batch_factor(&refs);
    for (slot, result) in results.iter().enumerate() {
        let fresh = CholeskySolver::factor(&sets[slot], &opts).expect("SPD input");
        assert_eq!(
            result.as_ref().expect("SPD batch").data(),
            fresh.factor_data(),
            "batch slot {slot} differs from serial"
        );
    }
}

#[test]
fn a_midstream_fault_quarantines_one_lane_without_poisoning_the_rest() {
    // Concurrency × fault injection: a transient device fault fires on
    // exactly one of 24 concurrent factorizations (the fired flag is
    // shared across the handle's lanes). That one call fails typed and
    // its lane is quarantined; every other call — including those that
    // land on the freshly rebuilt lane — must stay bit-identical to the
    // serial path.
    use rlchol::FaultPlan;

    const FT_THREADS: usize = 4;
    const FT_ITERS: usize = 6;
    let opts = SolverOptions {
        method: Method::RlGpu,
        gpu: GpuOptions::with_threshold(0),
        factor_lanes: 2,
        faults: Some(FaultPlan::parse("kernel@2:t").unwrap()),
        ..SolverOptions::default()
    };
    let clean = SolverOptions {
        faults: None,
        ..opts.clone()
    };
    let a0 = matrix(value_seed(0, 0));
    let handle = Arc::new(CholeskySolver::analyze(&a0, &opts));

    let mut reference: HashMap<u64, FactorData> = HashMap::new();
    for t in 0..FT_THREADS {
        for i in 0..FT_ITERS {
            let seed = value_seed(t, i);
            let fresh = CholeskySolver::factor(&matrix(seed), &clean).expect("SPD input");
            reference.insert(seed, fresh.factor_data().clone());
        }
    }
    let reference = Arc::new(reference);

    let faults = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let workers: Vec<_> = (0..FT_THREADS)
        .map(|t| {
            let handle = Arc::clone(&handle);
            let reference = Arc::clone(&reference);
            let faults = Arc::clone(&faults);
            std::thread::spawn(move || {
                for i in 0..FT_ITERS {
                    let seed = value_seed(t, i);
                    match handle.factor_with(&matrix(seed)) {
                        Ok(fact) => assert_eq!(
                            fact.data(),
                            &reference[&seed],
                            "t{t} i{i}: factor differs from serial after a sibling fault"
                        ),
                        Err(FactorError::DeviceFault(d)) => {
                            assert!(d.transient, "the planned fault is transient");
                            faults.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("t{t} i{i}: unexpected error {e}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("fault-injected stress worker panicked");
    }

    // The transient spec fires exactly once across the whole handle.
    assert_eq!(faults.load(std::sync::atomic::Ordering::Relaxed), 1);
    let stats = handle.lane_stats();
    assert_eq!(
        stats.quarantined, 1,
        "the struck lane was quarantined: {stats:?}"
    );
    assert_eq!(stats.in_use, 0, "no lane leaked: {stats:?}");
    assert_eq!(stats.checkouts, (FT_THREADS * FT_ITERS) as u64);
}

#[test]
fn batch_factor_preserves_error_context_across_lanes() {
    let a0 = matrix(1);
    let opts = opts_for(Method::RlbCpu, 4);
    let handle = CholeskySolver::analyze(&a0, &opts);

    let sets: Vec<SymCsc> = (10..18).map(matrix).collect();
    let mut bad = matrix(50);
    let dpos = bad.colptr()[7];
    bad.values_mut()[dpos] = -30.0;

    let mut refs: Vec<&SymCsc> = sets.iter().collect();
    refs.insert(4, &bad);
    let results = handle.batch_factor(&refs);
    assert_eq!(results.len(), refs.len());

    for (slot, result) in results.iter().enumerate() {
        if slot == 4 {
            // The typed error crosses batch_factor intact: same variant,
            // same Display payload as the direct call.
            let direct = handle.factor_with(&bad).expect_err("indefinite");
            let batched = result.as_ref().expect_err("indefinite slot");
            assert_eq!(batched, &direct, "batch must not rewrap the error");
            assert_eq!(format!("{batched}"), format!("{direct}"));
            assert!(
                matches!(batched, FactorError::NotPositiveDefinite { .. }),
                "got {batched:?}"
            );
        } else {
            let a = refs[slot];
            let fresh = CholeskySolver::factor(a, &opts).expect("SPD input");
            assert_eq!(
                results[slot].as_ref().expect("SPD slot").data(),
                fresh.factor_data(),
                "batch slot {slot} differs from serial"
            );
        }
    }
}
