//! Integration tests of the pipelined multi-stream GPU engines: factors
//! must be bit-identical to the single-stream engines at every stream
//! count and under both retirement disciplines, device memory pressure
//! must shed stream pairs before failing, and numeric failures must
//! propagate cleanly out of the pipeline.

use rlchol::core::engine::{GpuOptions, RetireMode, StreamAssign};
use rlchol::core::gpu_rl::factor_rl_gpu;
use rlchol::core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol::core::sched::{factor_rl_gpu_pipe, factor_rlb_gpu_pipe};
use rlchol::core::FactorError;
use rlchol::matgen::{grid2d, grid3d, Stencil};
use rlchol::ordering::{order, OrderingMethod};
use rlchol::perfmodel::MachineModel;
use rlchol::sparse::{SymCsc, TripletMatrix};
use rlchol::symbolic::{analyze, SymbolicFactor, SymbolicOptions};

const STREAM_SWEEP: [usize; 4] = [1, 2, 4, 8];
const RETIRES: [RetireMode; 2] = [RetireMode::InOrder, RetireMode::Ooo];

/// Order (nested dissection, for a bushy tree) and analyze.
fn prepared(a: &SymCsc) -> (SymbolicFactor, SymCsc) {
    let fill = order(a, OrderingMethod::NestedDissection);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let ap = af.permute(&sym.perm);
    (sym, ap)
}

/// Pipelined RL/RLB against their single-stream engines, bitwise, over
/// the stream sweep, a CPU/GPU-mixing threshold, both stream-pair
/// assignment policies, and both retirement disciplines (in-order
/// retirement makes the factor trivially independent of where each
/// supernode's device work ran; out-of-order retirement preserves the
/// same bits through per-target sequencing).
fn check_bit_identical(a: &SymCsc, label: &str) {
    let (sym, ap) = prepared(a);
    for threshold in [0usize, 300] {
        let opts = GpuOptions::with_threshold(threshold);
        let rl = factor_rl_gpu(&sym, &ap, &opts).unwrap();
        let rlb = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V1).unwrap();
        for streams in STREAM_SWEEP {
            for assign in [StreamAssign::RoundRobin, StreamAssign::LeastLoaded] {
                for retire in RETIRES {
                    let o = opts
                        .clone()
                        .with_streams(streams)
                        .with_assign(assign)
                        .with_retire(retire);
                    let rl_pipe = factor_rl_gpu_pipe(&sym, &ap, &o).unwrap();
                    assert_eq!(rl_pipe.streams_used, streams, "{label} thr {threshold}");
                    assert_eq!(rl_pipe.retire, retire);
                    assert_eq!(
                        rl.factor.sn, rl_pipe.factor.sn,
                        "{label}: RL thr {threshold} streams {streams} {assign:?} \
                         {retire:?} not bit-identical"
                    );
                    let rlb_pipe = factor_rlb_gpu_pipe(&sym, &ap, &o).unwrap();
                    assert_eq!(
                        rlb.factor.sn, rlb_pipe.factor.sn,
                        "{label}: RLB thr {threshold} streams {streams} {assign:?} \
                         {retire:?} not bit-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_matches_single_stream_bitwise_on_2d_grid() {
    check_bit_identical(&grid2d(16, 14, Stencil::Star5, 1, 61), "grid2d(16,14)");
}

#[test]
fn pipelined_matches_single_stream_bitwise_on_3d_grid() {
    check_bit_identical(&grid3d(7, 6, 6, Stencil::Star7, 1, 62), "grid3d(7,6,6)");
}

#[test]
fn multi_stream_pipelining_speeds_up_the_simulated_clock() {
    // The acceptance shape: on a 3-D problem with a bushy elimination
    // tree, going 1 -> 2 stream pairs must strictly shrink simulated
    // elapsed time, and more pairs never hurt.
    let a = grid3d(10, 10, 10, Stencil::Star7, 1, 63);
    let (sym, ap) = prepared(&a);
    let opts = GpuOptions::with_threshold(0);
    let mut prev = f64::INFINITY;
    for (i, streams) in STREAM_SWEEP.into_iter().enumerate() {
        let t = factor_rl_gpu_pipe(&sym, &ap, &opts.clone().with_streams(streams))
            .unwrap()
            .sim_seconds;
        if i == 1 {
            assert!(t < prev, "2 streams must strictly beat 1: {t} vs {prev}");
        } else {
            assert!(
                t <= prev + 1e-12,
                "streams {streams} regressed: {t} vs {prev}"
            );
        }
        prev = t;
    }
}

#[test]
fn out_of_order_retirement_beats_in_order_at_wide_stream_counts() {
    // In-order retirement serializes the host timeline on the oldest
    // in-flight supernode; with 8 stream pairs on a bushy ND tree that
    // is the dominant stall, and out-of-order retirement must convert
    // it into simulated speedup — while producing the identical factor.
    let a = grid3d(10, 10, 10, Stencil::Star7, 1, 63);
    let (sym, ap) = prepared(&a);
    let opts = GpuOptions::with_threshold(0).with_streams(8);
    let inorder =
        factor_rl_gpu_pipe(&sym, &ap, &opts.clone().with_retire(RetireMode::InOrder)).unwrap();
    let ooo = factor_rl_gpu_pipe(&sym, &ap, &opts.with_retire(RetireMode::Ooo)).unwrap();
    assert_eq!(inorder.factor.sn, ooo.factor.sn, "modes must agree bitwise");
    assert!(
        ooo.sim_seconds < inorder.sim_seconds,
        "ooo {} must beat inorder {}",
        ooo.sim_seconds,
        inorder.sim_seconds
    );
    assert!(ooo.lookahead >= 1, "ooo must report its final window");
    assert_eq!(inorder.lookahead, 0, "inorder reports no lookahead");
}

#[test]
fn staged_refactor_keeps_device_residency_and_skips_metadata_uploads() {
    use rlchol::{CholeskySolver, Method, SolverOptions};
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 66);
    let opts = SolverOptions {
        method: Method::RlGpuPipe,
        gpu: GpuOptions::with_threshold(0)
            .with_streams(2)
            .with_retire(RetireMode::Ooo),
        factor_lanes: 1,
        ..SolverOptions::default()
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    let cold = handle.factor_with(&a).unwrap();
    assert_eq!(
        cold.info().transfers_saved,
        0,
        "first factorization uploads its pattern metadata"
    );
    let warm = handle.factor_with(&a).unwrap();
    assert!(
        warm.info().transfers_saved > 0,
        "same-pattern refactor must reuse resident metadata"
    );
    // Residency is a pure transfer optimization: the factors agree
    // bitwise and the one-shot (non-resident) engine agrees too.
    let (sym, ap) = prepared(&a);
    let one_shot = factor_rl_gpu_pipe(
        &sym,
        &ap,
        &GpuOptions::with_threshold(0)
            .with_streams(2)
            .with_retire(RetireMode::Ooo),
    )
    .unwrap();
    assert_eq!(cold.data().sn, warm.data().sn);
    assert_eq!(cold.data().sn, one_shot.factor.sn);
}

#[test]
fn oom_sheds_stream_pairs_before_failing() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 64);
    let (sym, ap) = prepared(&a);
    let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
    let pair = ((max_panel + sym.max_update_matrix_entries()) * 8) as u64;
    // Room for two pairs and change, but not the four requested: the
    // engine must fall back to two streams and still produce the exact
    // single-stream factor.
    let mut opts = GpuOptions::with_threshold(0).with_streams(4);
    opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(pair * 2 + pair / 2);
    let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
    assert_eq!(run.streams_used, 2, "expected fallback to 2 stream pairs");
    assert!(run.stats.peak_bytes <= pair * 2 + pair / 2);
    let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
    assert_eq!(base.factor.sn, run.factor.sn);
}

#[test]
fn oom_propagates_when_no_pair_fits() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 65);
    let (sym, ap) = prepared(&a);
    let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
    let pair = ((max_panel + sym.max_update_matrix_entries()) * 8) as u64;
    for streams in STREAM_SWEEP {
        let mut opts = GpuOptions::with_threshold(0).with_streams(streams);
        opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(pair / 2);
        assert!(
            matches!(
                factor_rl_gpu_pipe(&sym, &ap, &opts),
                Err(FactorError::GpuOutOfMemory { .. })
            ),
            "streams {streams}"
        );
    }
}

#[test]
fn indefinite_matrix_errors_cleanly_under_pipelining() {
    // A strongly negative diagonal entry partway through the chain; the
    // pipeline must surface NotPositiveDefinite from the eager device
    // POTRF at any stream count — no wrong factor, no hang.
    let n = 150;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, if j == 77 { -50.0 } else { 4.0 });
        if j + 1 < n {
            t.push(j + 1, j, -1.0);
        }
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    let (sym, ap) = prepared(&a);
    for streams in STREAM_SWEEP {
        for threshold in [0usize, 200] {
            for retire in RETIRES {
                let opts = GpuOptions::with_threshold(threshold)
                    .with_streams(streams)
                    .with_retire(retire);
                assert!(
                    matches!(
                        factor_rl_gpu_pipe(&sym, &ap, &opts),
                        Err(FactorError::NotPositiveDefinite { .. })
                    ),
                    "RL streams {streams} thr {threshold} {retire:?}"
                );
                assert!(
                    matches!(
                        factor_rlb_gpu_pipe(&sym, &ap, &opts),
                        Err(FactorError::NotPositiveDefinite { .. })
                    ),
                    "RLB streams {streams} thr {threshold} {retire:?}"
                );
            }
        }
    }
    // The engines stay usable afterwards (fresh device per run, shared
    // host pool survives).
    let good = grid2d(8, 8, Stencil::Star5, 1, 9);
    let (gs, gap) = prepared(&good);
    assert!(factor_rlb_gpu_pipe(&gs, &gap, &GpuOptions::with_threshold(0).with_streams(2)).is_ok());
}
