//! Integration tests of the pipelined multi-stream GPU engines: factors
//! must be bit-identical to the single-stream engines at every stream
//! count, device memory pressure must shed stream pairs before failing,
//! and numeric failures must propagate cleanly out of the pipeline.

use rlchol::core::engine::{GpuOptions, StreamAssign};
use rlchol::core::gpu_rl::factor_rl_gpu;
use rlchol::core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol::core::sched::{factor_rl_gpu_pipe, factor_rlb_gpu_pipe};
use rlchol::core::FactorError;
use rlchol::matgen::{grid2d, grid3d, Stencil};
use rlchol::ordering::{order, OrderingMethod};
use rlchol::perfmodel::MachineModel;
use rlchol::sparse::{SymCsc, TripletMatrix};
use rlchol::symbolic::{analyze, SymbolicFactor, SymbolicOptions};

const STREAM_SWEEP: [usize; 3] = [1, 2, 4];

/// Order (nested dissection, for a bushy tree) and analyze.
fn prepared(a: &SymCsc) -> (SymbolicFactor, SymCsc) {
    let fill = order(a, OrderingMethod::NestedDissection);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let ap = af.permute(&sym.perm);
    (sym, ap)
}

/// Pipelined RL/RLB against their single-stream engines, bitwise, over
/// the stream sweep, a CPU/GPU-mixing threshold, and both stream-pair
/// assignment policies (in-order retirement makes the factor
/// independent of where each supernode's device work ran).
fn check_bit_identical(a: &SymCsc, label: &str) {
    let (sym, ap) = prepared(a);
    for threshold in [0usize, 300] {
        let opts = GpuOptions::with_threshold(threshold);
        let rl = factor_rl_gpu(&sym, &ap, &opts).unwrap();
        let rlb = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V1).unwrap();
        for streams in STREAM_SWEEP {
            for assign in [StreamAssign::RoundRobin, StreamAssign::LeastLoaded] {
                let o = opts.clone().with_streams(streams).with_assign(assign);
                let rl_pipe = factor_rl_gpu_pipe(&sym, &ap, &o).unwrap();
                assert_eq!(rl_pipe.streams_used, streams, "{label} thr {threshold}");
                assert_eq!(
                    rl.factor.sn, rl_pipe.factor.sn,
                    "{label}: RL thr {threshold} streams {streams} {assign:?} not bit-identical"
                );
                let rlb_pipe = factor_rlb_gpu_pipe(&sym, &ap, &o).unwrap();
                assert_eq!(
                    rlb.factor.sn, rlb_pipe.factor.sn,
                    "{label}: RLB thr {threshold} streams {streams} {assign:?} not bit-identical"
                );
            }
        }
    }
}

#[test]
fn pipelined_matches_single_stream_bitwise_on_2d_grid() {
    check_bit_identical(&grid2d(16, 14, Stencil::Star5, 1, 61), "grid2d(16,14)");
}

#[test]
fn pipelined_matches_single_stream_bitwise_on_3d_grid() {
    check_bit_identical(&grid3d(7, 6, 6, Stencil::Star7, 1, 62), "grid3d(7,6,6)");
}

#[test]
fn multi_stream_pipelining_speeds_up_the_simulated_clock() {
    // The acceptance shape: on a 3-D problem with a bushy elimination
    // tree, going 1 -> 2 stream pairs must strictly shrink simulated
    // elapsed time, and more pairs never hurt.
    let a = grid3d(10, 10, 10, Stencil::Star7, 1, 63);
    let (sym, ap) = prepared(&a);
    let opts = GpuOptions::with_threshold(0);
    let mut prev = f64::INFINITY;
    for (i, streams) in STREAM_SWEEP.into_iter().enumerate() {
        let t = factor_rl_gpu_pipe(&sym, &ap, &opts.clone().with_streams(streams))
            .unwrap()
            .sim_seconds;
        if i == 1 {
            assert!(t < prev, "2 streams must strictly beat 1: {t} vs {prev}");
        } else {
            assert!(
                t <= prev + 1e-12,
                "streams {streams} regressed: {t} vs {prev}"
            );
        }
        prev = t;
    }
}

#[test]
fn oom_sheds_stream_pairs_before_failing() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 64);
    let (sym, ap) = prepared(&a);
    let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
    let pair = ((max_panel + sym.max_update_matrix_entries()) * 8) as u64;
    // Room for two pairs and change, but not the four requested: the
    // engine must fall back to two streams and still produce the exact
    // single-stream factor.
    let mut opts = GpuOptions::with_threshold(0).with_streams(4);
    opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(pair * 2 + pair / 2);
    let run = factor_rl_gpu_pipe(&sym, &ap, &opts).unwrap();
    assert_eq!(run.streams_used, 2, "expected fallback to 2 stream pairs");
    assert!(run.stats.peak_bytes <= pair * 2 + pair / 2);
    let base = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
    assert_eq!(base.factor.sn, run.factor.sn);
}

#[test]
fn oom_propagates_when_no_pair_fits() {
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 65);
    let (sym, ap) = prepared(&a);
    let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
    let pair = ((max_panel + sym.max_update_matrix_entries()) * 8) as u64;
    for streams in STREAM_SWEEP {
        let mut opts = GpuOptions::with_threshold(0).with_streams(streams);
        opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(pair / 2);
        assert!(
            matches!(
                factor_rl_gpu_pipe(&sym, &ap, &opts),
                Err(FactorError::GpuOutOfMemory { .. })
            ),
            "streams {streams}"
        );
    }
}

#[test]
fn indefinite_matrix_errors_cleanly_under_pipelining() {
    // A strongly negative diagonal entry partway through the chain; the
    // pipeline must surface NotPositiveDefinite from the eager device
    // POTRF at any stream count — no wrong factor, no hang.
    let n = 150;
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, if j == 77 { -50.0 } else { 4.0 });
        if j + 1 < n {
            t.push(j + 1, j, -1.0);
        }
    }
    let a = SymCsc::from_lower_triplets(&t).unwrap();
    let (sym, ap) = prepared(&a);
    for streams in STREAM_SWEEP {
        for threshold in [0usize, 200] {
            let opts = GpuOptions::with_threshold(threshold).with_streams(streams);
            assert!(
                matches!(
                    factor_rl_gpu_pipe(&sym, &ap, &opts),
                    Err(FactorError::NotPositiveDefinite { .. })
                ),
                "RL streams {streams} thr {threshold}"
            );
            assert!(
                matches!(
                    factor_rlb_gpu_pipe(&sym, &ap, &opts),
                    Err(FactorError::NotPositiveDefinite { .. })
                ),
                "RLB streams {streams} thr {threshold}"
            );
        }
    }
    // The engines stay usable afterwards (fresh device per run, shared
    // host pool survives).
    let good = grid2d(8, 8, Stencil::Star5, 1, 9);
    let (gs, gap) = prepared(&good);
    assert!(factor_rlb_gpu_pipe(&gs, &gap, &GpuOptions::with_threshold(0).with_streams(2)).is_ok());
}
