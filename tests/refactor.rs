//! Refactorization semantics across every engine: factor a pattern
//! once, refactor with several value sets, and require the results to
//! be **bit-identical** to a fresh one-shot factorization — plus the
//! typed error paths (pattern mismatch, not-positive-definite on
//! refactor).
//!
//! The task-parallel CPU engines apply fan-out updates in a
//! nondeterministic order when running with >1 lane, so run-to-run
//! factors differ by roundoff there; the bit-identity sweep pins them
//! to one lane (which exercises the same entry points) and a separate
//! tolerance-based test covers the multi-lane path.

use rlchol::core::FactorError;
use rlchol::matgen::{grid3d, Stencil};
use rlchol::{CholeskySolver, GpuOptions, Method, SolverOptions, SymCsc};

/// Same pattern for every seed; values re-roll per seed.
fn matrix(seed: u64) -> SymCsc {
    grid3d(5, 4, 4, Stencil::Star7, 1, seed)
}

fn opts_for(method: Method) -> SolverOptions {
    let threshold = if method.is_gpu() { 200 } else { usize::MAX };
    let threads = match method {
        // One lane: deterministic (serial) schedule through the same
        // task-parallel entry points.
        Method::RlCpuPar | Method::RlbCpuPar => 1,
        _ => 0,
    };
    SolverOptions {
        method,
        gpu: GpuOptions::with_threshold(threshold),
        threads,
        ..SolverOptions::default()
    }
}

#[test]
fn refactor_is_bit_identical_to_one_shot_for_every_engine() {
    let a0 = matrix(100);
    for method in Method::ALL {
        let opts = opts_for(method);
        let handle = CholeskySolver::analyze(&a0, &opts);
        let mut fact = handle.factor_with(&a0).expect("SPD input");
        let storage_ptr = fact.data().sn[0].as_ptr();
        for seed in [101u64, 102, 103] {
            let a = matrix(seed);
            handle.refactor(&mut fact, &a).expect("SPD values");
            assert_eq!(
                fact.data().sn[0].as_ptr(),
                storage_ptr,
                "{method:?}: refactor must reuse factor storage, not reallocate"
            );
            let fresh = CholeskySolver::factor(&a, &opts).expect("SPD input");
            assert_eq!(
                fact.data(),
                fresh.factor_data(),
                "{method:?} seed {seed}: refactored factor differs from one-shot"
            );
        }
    }
}

#[test]
fn multi_lane_refactor_matches_serial_within_roundoff() {
    let a0 = matrix(200);
    let a1 = matrix(201);
    for method in [Method::RlCpuPar, Method::RlbCpuPar] {
        let opts = SolverOptions {
            method,
            threads: 4,
            ..SolverOptions::default()
        };
        let handle = CholeskySolver::analyze(&a0, &opts);
        let mut fact = handle.factor_with(&a0).expect("SPD input");
        let storage_ptr = fact.data().sn[0].as_ptr();
        handle.refactor(&mut fact, &a1).expect("SPD values");
        assert_eq!(
            fact.data().sn[0].as_ptr(),
            storage_ptr,
            "{method:?}: multi-lane refactor must reuse factor storage"
        );
        let serial = CholeskySolver::factor(&a1, &opts_for(Method::RlCpu)).expect("SPD input");
        let diff = fact.data().max_rel_diff(serial.factor_data());
        assert!(diff < 1e-11, "{method:?}: relative diff {diff}");
    }
}

#[test]
fn pattern_mismatch_is_rejected_for_factor_and_refactor() {
    let a = matrix(300);
    let wrong_size = grid3d(5, 4, 3, Stencil::Star7, 1, 300);
    let wrong_pattern = grid3d(5, 4, 4, Stencil::Star27, 1, 300);
    let handle = CholeskySolver::analyze(&a, &SolverOptions::default());
    let mut fact = handle.factor_with(&a).expect("SPD input");
    let before = fact.data().clone();
    for bad in [&wrong_size, &wrong_pattern] {
        assert!(matches!(
            handle.factor_with(bad),
            Err(FactorError::PatternMismatch { .. })
        ));
        assert!(matches!(
            handle.refactor(&mut fact, bad),
            Err(FactorError::PatternMismatch { .. })
        ));
        // A rejected refactor leaves the factorization untouched.
        assert_eq!(fact.data(), &before);
    }
}

#[test]
fn non_pd_on_refactor_errors_for_every_engine_and_handle_recovers() {
    let a0 = matrix(400);
    // Same pattern, indefinite values: a large negative diagonal entry.
    let mut bad = a0.clone();
    let mid = bad.n() / 2;
    let dpos = bad.colptr()[mid];
    bad.values_mut()[dpos] = -100.0;

    for method in Method::ALL {
        let opts = opts_for(method);
        let handle = CholeskySolver::analyze(&a0, &opts);
        let mut fact = handle.factor_with(&a0).expect("SPD input");
        let err = handle.refactor(&mut fact, &bad).expect_err("indefinite");
        match err {
            FactorError::NotPositiveDefinite { .. } | FactorError::Gpu(_) => {}
            other => panic!("{method:?}: unexpected error {other:?}"),
        }
        // The handle stays usable afterwards and matches one-shot again.
        handle.refactor(&mut fact, &a0).expect("SPD values");
        let fresh = CholeskySolver::factor(&a0, &opts).expect("SPD input");
        assert_eq!(
            fact.data(),
            fresh.factor_data(),
            "{method:?}: post-error refactor"
        );
    }
}
