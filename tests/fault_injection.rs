//! Fault-injection sweep: the graceful-degradation acceptance suite.
//!
//! The contract under test — under **any** injected fault schedule, a
//! factorization either returns a factor bit-identical to the factor
//! the serving engine produces on a clean serial run, or a typed error;
//! never a panic, a hang, or a silently wrong result.
//!
//! Two sweeps plus targeted scenarios:
//!
//! * **Direct engine sweep** — every GPU engine, a fault at every
//!   reachable kernel / transfer / alloc ordinal (the clean run's device
//!   counters bound the ordinal space), no recovery configured: every
//!   strike must surface as a typed device error. Stream stalls (which
//!   never fail) must leave the factor bit-identical and only inflate
//!   the simulated clock.
//! * **Staged recovery sweep** — the same ordinal space through the
//!   staged handle with the recommended fallback chain and a retry
//!   budget: every point must recover (the chain ends on a CPU engine
//!   with no device failure modes), log its recovery, and produce a
//!   factor bit-identical to a clean one-shot run of whichever engine
//!   ended up serving it.
//!
//! Sweep size: debug builds use a small grid and sweep exhaustively;
//! release builds use the acceptance matrix (grid3d(12,12,12), nested
//! dissection) and cap each ordinal class unless `RLCHOL_FAULT_SWEEP=full`
//! (the CI fault leg) asks for the exhaustive run.

use std::time::Duration;

use rlchol::core::engine::RetireMode;
use rlchol::core::{engine_for, EngineWorkspace};
use rlchol::matgen::{grid3d, Stencil};
use rlchol::symbolic::analyze;
use rlchol::{
    CholeskySolver, Deadline, FactorData, FactorError, FallbackChain, FaultKind, FaultPlan,
    GpuOptions, Method, RecoveryAction, RetryPolicy, SolveError, SolveWorkspace, SolverOptions,
    SymCsc,
};

/// Debug builds sweep a small grid exhaustively; release builds sweep
/// the acceptance matrix.
fn sweep_matrix() -> SymCsc {
    if cfg!(debug_assertions) {
        grid3d(4, 4, 3, Stencil::Star7, 1, 7)
    } else {
        grid3d(12, 12, 12, Stencil::Star7, 1, 7)
    }
}

fn gpu_methods() -> Vec<Method> {
    Method::ALL.iter().copied().filter(|m| m.is_gpu()).collect()
}

/// Everything-on-GPU options so the ordinal space covers the whole
/// schedule, with `faults` installed and the retirement discipline
/// pinned when the sweep asks for one (`None` resolves from
/// `RLCHOL_RETIRE`, which the CI fault leg sets per matrix job).
fn gpu_opts(faults: Option<FaultPlan>, retire: Option<RetireMode>) -> GpuOptions {
    let mut gpu = GpuOptions::with_threshold(0);
    gpu.faults = faults;
    gpu.retire = retire;
    gpu
}

fn solver_opts(method: Method, faults: Option<FaultPlan>) -> SolverOptions {
    SolverOptions {
        method,
        gpu: gpu_opts(faults, None),
        // Pin the task-parallel CPU engines to one pool lane so a
        // fallback factorization is deterministic (same policy as
        // tests/shared_handle.rs) and bitwise comparable to a clean
        // one-shot run.
        threads: 1,
        factor_lanes: 1,
        ..SolverOptions::default()
    }
}

/// Ordinals to sweep for one fault class: exhaustive when small (or
/// when `RLCHOL_FAULT_SWEEP=full`), else evenly strided.
fn sweep_points(count: u64) -> Vec<u64> {
    let full =
        cfg!(debug_assertions) || std::env::var("RLCHOL_FAULT_SWEEP").is_ok_and(|v| v == "full");
    let cap = if full { u64::MAX } else { 200 };
    let stride = count.div_ceil(cap).max(1);
    (0..count).step_by(stride as usize).collect()
}

/// The engine that ends up serving a factorization, per its recovery
/// log: the last fallback target, or the primary when only retries (or
/// nothing) happened.
fn final_method(primary: Method, recovery: &[rlchol::RecoveryEvent]) -> Method {
    recovery
        .iter()
        .rev()
        .find_map(|e| match e.action {
            RecoveryAction::FellBack { to } => Some(to),
            _ => None,
        })
        .unwrap_or(primary)
}

#[test]
fn injected_faults_surface_as_typed_errors_for_every_gpu_engine() {
    let a = sweep_matrix();
    let sym = analyze(&a, &Default::default());
    let ap = a.permute(&sym.perm);

    for method in gpu_methods() {
        let engine = engine_for(method);
        // The pipelined engines sweep both retirement disciplines — the
        // out-of-order path reorders host effects and must uphold the
        // same contract at every ordinal. The other engines have no
        // retirement phase.
        let retires: &[Option<RetireMode>] =
            if matches!(method, Method::RlGpuPipe | Method::RlbGpuPipe) {
                &[Some(RetireMode::InOrder), Some(RetireMode::Ooo)]
            } else {
                &[None]
            };
        for &retire in retires {
            // Clean run: the reference factor and the ordinal space.
            let mut ws = EngineWorkspace::new(1, gpu_opts(None, retire));
            let clean = engine.factor(&sym, &ap, &mut ws).unwrap();
            let stats = clean.info.gpu.as_ref().unwrap();
            let (kernels, transfers, allocs) = (
                stats.kernel_launches,
                stats.h2d_count + stats.d2h_count,
                stats.alloc_count,
            );
            assert!(
                kernels > 0 && transfers > 0 && allocs > 0,
                "{method:?} {retire:?}: clean run must exercise the device"
            );
            let clean_sim = clean.info.sim_seconds.unwrap();

            // Failing faults: every strike is a typed device error, and
            // the factorization never panics.
            let classes: [(FaultKind, u64, fn(FaultPlan, u64) -> FaultPlan); 3] = [
                (FaultKind::KernelFault, kernels, |p, i| p.kernel_at(i)),
                (FaultKind::TransferFail, transfers, |p, i| p.transfer_at(i)),
                (FaultKind::DeviceOom, allocs, |p, i| p.oom_at(i)),
            ];
            for (kind, count, inject) in classes {
                for i in sweep_points(count) {
                    let plan = inject(FaultPlan::new(), i);
                    let mut ws = EngineWorkspace::new(1, gpu_opts(Some(plan), retire));
                    match engine.factor(&sym, &ap, &mut ws) {
                        Err(err) => assert!(
                            err.is_device(),
                            "{method:?} {retire:?}: {kind:?}@{i} surfaced as a \
                             non-device error: {err:?}"
                        ),
                        Ok(run) => {
                            // The pipelined engines absorb device OOM by
                            // shedding stream pairs (and, once no pair
                            // fits, routing supernodes down the CPU
                            // path) — their pre-existing graceful path,
                            // not a missed strike. The factor must still
                            // be right: bitwise for the RL family (CPU
                            // and GPU paths round identically),
                            // numerically for RLB (the CPU/GPU split
                            // changes the update order).
                            assert!(
                                kind == FaultKind::DeviceOom
                                    && matches!(method, Method::RlGpuPipe | Method::RlbGpuPipe),
                                "{method:?} {retire:?}: {kind:?}@{i} must strike"
                            );
                            if method == Method::RlGpuPipe {
                                assert_eq!(
                                    run.factor, clean.factor,
                                    "{method:?} {retire:?}: absorbed oom@{i} changed the factor"
                                );
                            } else {
                                let d = run.factor.max_rel_diff(&clean.factor);
                                assert!(
                                    d < 1e-12,
                                    "{method:?} {retire:?}: absorbed oom@{i} factor off by {d:e}"
                                );
                            }
                        }
                    }
                }
            }

            // Stalls never fail: bit-identical factor, inflated sim
            // clock.
            for i in sweep_points(kernels + transfers) {
                let plan = FaultPlan::new().stall_at(i, 0.05);
                let mut ws = EngineWorkspace::new(1, gpu_opts(Some(plan), retire));
                let run = engine.factor(&sym, &ap, &mut ws).unwrap_or_else(|e| {
                    panic!("{method:?} {retire:?}: stall@{i} must not fail: {e}")
                });
                assert_eq!(
                    run.factor, clean.factor,
                    "{method:?} {retire:?}: stall@{i} changed the factor"
                );
                assert!(
                    run.info.sim_seconds.unwrap() > clean_sim + 0.04,
                    "{method:?} {retire:?}: stall@{i} did not inflate the simulated clock"
                );
            }
        }
    }
}

#[test]
fn recommended_chain_recovers_every_fault_to_a_clean_engines_factor() {
    let a = sweep_matrix();
    // Clean one-shot references, built lazily per serving engine.
    let mut reference: std::collections::HashMap<Method, FactorData> =
        std::collections::HashMap::new();
    let mut reference_for = |m: Method, a: &SymCsc| -> FactorData {
        reference
            .entry(m)
            .or_insert_with(|| {
                CholeskySolver::factor(a, &solver_opts(m, None))
                    .expect("clean reference factorization")
                    .factor_data()
                    .clone()
            })
            .clone()
    };

    // The staged sweep re-analyzes per point (the fault plan is resolved
    // at handle construction), so stride harder than the direct sweep.
    let staged_cap = 24u64;

    for method in gpu_methods() {
        let probe = CholeskySolver::factor(&a, &solver_opts(method, None)).unwrap();
        let stats = probe.info().gpu.as_ref().unwrap();
        let classes: [(u64, fn(FaultPlan, u64) -> FaultPlan); 3] = [
            (stats.kernel_launches, |p, i| p.kernel_at(i)),
            (stats.h2d_count + stats.d2h_count, |p, i| p.transfer_at(i)),
            (stats.alloc_count, |p, i| p.oom_at(i)),
        ];
        for (count, inject) in classes {
            let stride = count.div_ceil(staged_cap).max(1);
            for i in (0..count).step_by(stride as usize) {
                let opts = SolverOptions {
                    fallback: FallbackChain::recommended(method),
                    retry: RetryPolicy::retries(1),
                    ..solver_opts(method, Some(inject(FaultPlan::new(), i)))
                };
                let handle = CholeskySolver::analyze(&a, &opts);
                let fact = handle.factor_with(&a).unwrap_or_else(|e| {
                    panic!("{method:?} fault @{i}: chain to CPU must recover, got {e}")
                });
                if fact.info().recovery.is_empty() {
                    // The pipelined engines absorb device OOM internally
                    // (shedding stream pairs, routing supernodes to the
                    // CPU path) — nothing for the chain to log. The
                    // factor must still match the primary's clean run:
                    // bitwise for RL, numerically for RLB (shedding
                    // changes the CPU/GPU split).
                    assert!(
                        matches!(method, Method::RlGpuPipe | Method::RlbGpuPipe),
                        "{method:?} fault @{i}: recovery must be logged"
                    );
                    let clean = reference_for(method, &a);
                    if method == Method::RlGpuPipe {
                        assert_eq!(
                            fact.data(),
                            &clean,
                            "{method:?} fault @{i}: absorbed oom changed the factor"
                        );
                    } else {
                        let d = fact.data().max_rel_diff(&clean);
                        assert!(
                            d < 1e-12,
                            "{method:?} fault @{i}: absorbed oom factor off by {d:e}"
                        );
                    }
                    continue;
                }
                let served_by = final_method(method, &fact.info().recovery);
                assert_ne!(
                    served_by, method,
                    "{method:?} fault @{i}: a persistent fault cannot be served by the primary"
                );
                assert_eq!(
                    fact.data(),
                    &reference_for(served_by, &a),
                    "{method:?} fault @{i}: recovered factor differs from a clean {served_by:?} run"
                );
            }
        }
    }
}

#[test]
fn transient_fault_retries_on_the_same_engine() {
    let a = sweep_matrix();
    let plan = FaultPlan::new().kernel_at(3).transient();
    let opts = SolverOptions {
        retry: RetryPolicy::retries(2),
        ..solver_opts(Method::RlGpu, Some(plan))
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    let fact = handle.factor_with(&a).expect("transient fault must retry");
    let recovery = &fact.info().recovery;
    assert_eq!(recovery.len(), 1, "exactly one retry: {recovery:?}");
    assert!(
        matches!(recovery[0].action, RecoveryAction::Retried),
        "expected a retry event, got {:?}",
        recovery[0]
    );
    assert_eq!(recovery[0].method, Method::RlGpu);
    // The retry re-ran the *same* engine: bit-identical to a clean run.
    let clean = CholeskySolver::factor(&a, &solver_opts(Method::RlGpu, None)).unwrap();
    assert_eq!(fact.data(), clean.factor_data());
}

#[test]
fn faults_without_recovery_configured_surface_typed() {
    let a = sweep_matrix();
    // Persistent fault, no retry, no chain: the typed error comes back.
    let handle = CholeskySolver::analyze(
        &a,
        &solver_opts(Method::RlbGpuV2, Some(FaultPlan::new().kernel_at(0))),
    );
    let err = handle.factor_with(&a).expect_err("no recovery configured");
    assert!(matches!(err, FactorError::DeviceFault(_)), "got {err:?}");
    // The failed factorization quarantined its lane; the next call on
    // the same handle still works once the fault plan no longer strikes
    // (kernel@0 strikes every run here, so assert the quarantine count
    // and that errors stay typed across repeated calls instead).
    assert_eq!(handle.lane_stats().quarantined, 1);
    let again = handle.factor_with(&a).expect_err("fault is persistent");
    assert!(again.is_device());
    assert_eq!(handle.lane_stats().quarantined, 2);
    assert_eq!(handle.lane_stats().in_use, 0, "no lane leaked");
}

#[test]
fn transient_retry_budget_of_zero_falls_back_instead() {
    let a = sweep_matrix();
    let plan = FaultPlan::new().kernel_at(1).transient();
    let opts = SolverOptions {
        fallback: FallbackChain::new(vec![Method::RlCpu]),
        retry: RetryPolicy::default(), // no retries
        ..solver_opts(Method::RlGpu, Some(plan))
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    let fact = handle.factor_with(&a).expect("chain must recover");
    assert!(matches!(
        fact.info().recovery.as_slice(),
        [rlchol::RecoveryEvent {
            action: RecoveryAction::FellBack { to: Method::RlCpu },
            ..
        }]
    ));
    let clean = CholeskySolver::factor(&a, &solver_opts(Method::RlCpu, None)).unwrap();
    assert_eq!(fact.data(), clean.factor_data());
}

#[test]
fn device_oom_falls_back_to_cpu() {
    let a = sweep_matrix();
    let opts = SolverOptions {
        fallback: FallbackChain::new(vec![Method::RlbCpu]),
        ..solver_opts(Method::RlbGpuPipe, Some(FaultPlan::new().oom_at(0)))
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    let fact = handle.factor_with(&a).expect("CPU fallback owns no device");
    assert_eq!(
        final_method(Method::RlbGpuPipe, &fact.info().recovery),
        Method::RlbCpu
    );
    let clean = CholeskySolver::factor(&a, &solver_opts(Method::RlbCpu, None)).unwrap();
    assert_eq!(fact.data(), clean.factor_data());
}

#[test]
fn stream_stalls_trip_the_simulated_deadline() {
    let a = sweep_matrix();
    // Sanity: the clean run fits comfortably inside the budget.
    let budget = 60.0;
    let clean_opts = SolverOptions {
        deadline: Deadline::sim(budget),
        ..solver_opts(Method::RlGpu, None)
    };
    let handle = CholeskySolver::analyze(&a, &clean_opts);
    handle.factor_with(&a).expect("clean run fits the budget");

    // A stalled stream inflates the simulated clock past it.
    let opts = SolverOptions {
        deadline: Deadline::sim(budget),
        ..solver_opts(
            Method::RlGpu,
            Some(FaultPlan::new().stall_at(0, 2.0 * budget)),
        )
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    match handle.factor_with(&a) {
        Err(FactorError::DeadlineExceeded { sim_seconds, .. }) => {
            assert_eq!(sim_seconds, Some(budget));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn wall_deadlines_preempt_cpu_engines_too() {
    let a = sweep_matrix();
    let opts = SolverOptions {
        deadline: Deadline::wall(Duration::ZERO),
        ..solver_opts(Method::RlCpu, None)
    };
    let handle = CholeskySolver::analyze(&a, &opts);
    match handle.factor_with(&a) {
        Err(FactorError::DeadlineExceeded { wall, .. }) => {
            assert_eq!(wall, Some(Duration::ZERO));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn cancellation_is_typed_and_reversible() {
    let a = sweep_matrix();
    let handle = CholeskySolver::analyze(&a, &solver_opts(Method::RlbCpu, None));
    let token = handle.cancel_token();
    token.cancel();
    // Direct calls and whole batches observe the token.
    assert!(matches!(
        handle.factor_with(&a),
        Err(FactorError::Cancelled)
    ));
    let batch: Vec<&SymCsc> = (0..4).map(|_| &a).collect();
    for r in handle.batch_factor(&batch) {
        assert!(matches!(r, Err(FactorError::Cancelled)), "got {r:?}");
    }
    // Reset: the handle serves again.
    token.reset();
    handle.factor_with(&a).expect("reset token must serve");
}

#[test]
fn non_finite_solves_surface_typed() {
    let a = sweep_matrix();
    let handle = CholeskySolver::analyze(&a, &solver_opts(Method::RlCpu, None));
    let fact = handle.factor_with(&a).unwrap();
    let n = a.n();
    let b = vec![f64::NAN; n];
    let mut x = vec![0.0; n];
    let mut ws = SolveWorkspace::warm(n, 1);
    match handle.solve_refined(&fact, &a, &b, &mut x, 2, &mut ws) {
        Err(SolveError::NonFinite { iteration }) => {
            assert_eq!(iteration, 0, "NaN must be caught on the first residual");
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
}

#[test]
fn seeded_plans_are_deterministic_end_to_end() {
    // The same seeded schedule against the same workload produces the
    // same outcome — the property the sweep (and CI) relies on.
    let a = sweep_matrix();
    let outcome = |seed: u64| {
        let opts = SolverOptions {
            fallback: FallbackChain::recommended(Method::RlbGpuPipe),
            retry: RetryPolicy::retries(1),
            ..solver_opts(Method::RlbGpuPipe, Some(FaultPlan::seeded(seed, 6, 64)))
        };
        let handle = CholeskySolver::analyze(&a, &opts);
        match handle.factor_with(&a) {
            Ok(f) => (
                true,
                f.info()
                    .recovery
                    .iter()
                    .map(|e| format!("{e}"))
                    .collect::<Vec<_>>(),
                Some(f.data().clone()),
            ),
            Err(e) => (false, vec![format!("{e}")], None),
        }
    };
    for seed in [1u64, 42, 1234] {
        let first = outcome(seed);
        let second = outcome(seed);
        assert_eq!(first.0, second.0, "seed {seed}: outcome diverged");
        assert_eq!(first.1, second.1, "seed {seed}: recovery log diverged");
        assert_eq!(first.2, second.2, "seed {seed}: factor diverged");
    }
}
