//! Level-set triangular solves against the serial reference, bitwise.
//!
//! The contract under test: the tree-parallel sweeps produce **exactly**
//! the serial bits at every thread count and RHS block size, on both
//! tree shapes that matter — a natural-ordered band matrix whose
//! elimination tree is a path (every level 1 wide: the degenerate case
//! where level scheduling has nothing to do) and an ND-ordered 3-D grid
//! whose tree is bushy (the case the parallelism exists for). The
//! staged handle must make the same guarantee across its serial/parallel
//! selection, and its plan must describe both shapes truthfully.

use rlchol::core::rl::factor_rl_cpu;
use rlchol::core::solve::{
    solve_backward_level_set, solve_backward_multi, solve_forward_level_set, solve_forward_multi,
    SolvePlan,
};
use rlchol::matgen::{grid3d, Stencil};
use rlchol::ordering::{order, OrderingMethod};
use rlchol::symbolic::{analyze, SymbolicFactor, SymbolicOptions};
use rlchol::{CholeskySolver, SolveWorkspace, SolverOptions, SymCsc, TripletMatrix};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const RHS_SWEEP: [usize; 3] = [1, 4, 33];

/// A natural-ordered band matrix (bandwidth 2): its elimination tree is
/// a path, so every level holds exactly one supernode.
fn band_matrix(n: usize) -> SymCsc {
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        t.push(j, j, 8.0);
        if j + 1 < n {
            t.push(j + 1, j, -1.0);
        }
        if j + 2 < n {
            t.push(j + 2, j, -0.5);
        }
    }
    SymCsc::from_lower_triplets(&t).unwrap()
}

/// Orders (optionally), analyzes, factors, and returns everything the
/// sweeps need.
fn prepared(
    a: &SymCsc,
    ordering: OrderingMethod,
) -> (SymbolicFactor, SymCsc, rlchol::core::FactorData, SolvePlan) {
    let fill = order(a, ordering);
    let af = a.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let ap = af.permute(&sym.perm);
    let run = factor_rl_cpu(&sym, &ap).unwrap();
    let plan = SolvePlan::build(&sym);
    (sym, ap, run.factor, plan)
}

/// Runs the serial reference and the level-set sweeps over the full
/// thread × RHS sweep and demands bitwise equality.
fn check_sweep(a: &SymCsc, ordering: OrderingMethod, label: &str) {
    let (sym, _ap, factor, plan) = prepared(a, ordering);
    let n = sym.n;
    for k in RHS_SWEEP {
        let b: Vec<f64> = (0..n * k).map(|i| ((i * 37) % 29) as f64 - 14.0).collect();
        let mut reference = b.clone();
        solve_forward_multi(&sym, &factor, &mut reference, k);
        solve_backward_multi(&sym, &factor, &mut reference, k);
        for threads in THREAD_SWEEP {
            let mut x = b.clone();
            solve_forward_level_set(&sym, &plan, &factor, &mut x, k, threads);
            solve_backward_level_set(&sym, &plan, &factor, &mut x, k, threads);
            assert_eq!(x, reference, "{label}: threads {threads} k {k}");
        }
    }
}

#[test]
fn path_shaped_band_matrix_matches_serial_bitwise() {
    let a = band_matrix(300);
    let (_, _, _, plan) = prepared(&a, OrderingMethod::Natural);
    assert_eq!(
        plan.max_width(),
        1,
        "natural-ordered band must degenerate to 1-wide levels"
    );
    check_sweep(&a, OrderingMethod::Natural, "band(300) natural");
}

#[test]
fn nd_ordered_grid3d_matches_serial_bitwise() {
    let a = grid3d(7, 6, 6, Stencil::Star7, 1, 71);
    let (_, _, _, plan) = prepared(&a, OrderingMethod::NestedDissection);
    assert!(plan.max_width() > 1, "ND grid3d must have level width");
    check_sweep(&a, OrderingMethod::NestedDissection, "grid3d(7,6,6) ND");
}

#[test]
fn staged_handle_paths_agree_bitwise_across_thread_settings() {
    // The user-facing guarantee: a handle forced parallel and a handle
    // forced serial return identical solutions through every entry
    // point, including the permutation plumbing.
    let a = grid3d(6, 6, 5, Stencil::Star7, 1, 72);
    let n = a.n();
    let serial = CholeskySolver::analyze(
        &a,
        &SolverOptions {
            solve_threads: 1,
            ..SolverOptions::default()
        },
    );
    assert!(!serial.solve_info().level_set);
    let fact_s = serial.factor_with(&a).unwrap();
    let k = 5;
    let b: Vec<f64> = (0..n * k).map(|i| ((i * 11) % 23) as f64 - 11.0).collect();
    let mut ws = SolveWorkspace::new();
    let mut x_serial = vec![0.0; n * k];
    serial
        .solve_many(&fact_s, &b, &mut x_serial, k, &mut ws)
        .unwrap();
    for threads in [2usize, 4, 8] {
        let par = CholeskySolver::analyze(
            &a,
            &SolverOptions {
                solve_threads: threads,
                ..SolverOptions::default()
            },
        );
        let info = par.solve_info();
        assert!(info.level_set, "threads {threads} must select level-set");
        assert_eq!(info.threads, threads);
        let fact_p = par.factor_with(&a).unwrap();
        let mut x_par = vec![0.0; n * k];
        par.solve_many(&fact_p, &b, &mut x_par, k, &mut ws).unwrap();
        assert_eq!(x_par, x_serial, "threads {threads}");
        // Single-RHS path too.
        let mut x1s = vec![0.0; n];
        let mut x1p = vec![0.0; n];
        serial
            .solve_into(&fact_s, &b[..n], &mut x1s, &mut ws)
            .unwrap();
        par.solve_into(&fact_p, &b[..n], &mut x1p, &mut ws).unwrap();
        assert_eq!(x1p, x1s, "threads {threads} single RHS");
    }
}

#[test]
fn solve_info_matches_plan_shapes() {
    // Path-shaped: never parallel, whatever the thread setting.
    let band = band_matrix(300);
    let h = CholeskySolver::analyze(
        &band,
        &SolverOptions {
            ordering: OrderingMethod::Natural,
            solve_threads: 8,
            ..SolverOptions::default()
        },
    );
    let info = h.solve_info();
    assert_eq!(info.max_width, 1);
    assert!(
        !info.level_set,
        "1-wide levels leave nothing to parallelize"
    );
    // Bushy: parallel once threads allow.
    let grid = grid3d(6, 6, 6, Stencil::Star7, 1, 73);
    let h = CholeskySolver::analyze(
        &grid,
        &SolverOptions {
            solve_threads: 4,
            ..SolverOptions::default()
        },
    );
    let info = h.solve_info();
    assert!(info.max_width > 1);
    assert!(info.levels > 1);
    assert!(info.level_set);
}
